"""Neighbor tables and the local-knowledge prerequisite of CDPF-NE.

§V-A of the paper: "every sensor node knows all the detailed information
about its one-hop neighbors, especially their positions", refreshed at a low
frequency (once per day or less).  :class:`NeighborTables` materializes that
knowledge from the deployment, and :func:`knowledge_exchange_cost` charges
the (amortized, tiny) setup traffic so the ablation benches can show it is
negligible next to per-iteration tracking traffic.
"""

from __future__ import annotations

import numpy as np

from .messages import DataSizes
from .neighborhood import NeighborhoodCache
from .radio import RadioModel

__all__ = ["NeighborTables", "knowledge_exchange_cost"]


class NeighborTables:
    """Lazily materialized one-hop neighbor lists over a static deployment.

    At the paper's densities a node can have >1000 one-hop neighbors, so
    materializing all tables up front would cost tens of millions of entries
    while a tracking run only ever touches nodes near the trajectory.  Tables
    are therefore computed on first access and cached.

    The lists live in a :class:`~repro.network.neighborhood.NeighborhoodCache`;
    pass one in (``Scenario.make_neighbor_tables`` shares the medium's when
    believed == physical geometry) or a private cache is built.
    """

    def __init__(
        self,
        positions: np.ndarray,
        radio: RadioModel,
        *,
        neighborhood: NeighborhoodCache | None = None,
    ) -> None:
        self.positions = np.asarray(positions, dtype=np.float64)
        self.radio = radio
        if neighborhood is not None and neighborhood.radius == float(radio.comm_radius):
            self._neighborhood = neighborhood
        else:
            self._neighborhood = NeighborhoodCache(self.positions, radio.comm_radius)

    @property
    def n_nodes(self) -> int:
        return self.positions.shape[0]

    def neighbors(self, node_id: int) -> np.ndarray:
        """Sorted ids of nodes within the communication radius (excluding self)."""
        return self._neighborhood.neighbors(node_id)

    def degree(self, node_id: int) -> int:
        return self._neighborhood.degree(node_id)

    def warm(self, node_ids) -> None:
        """Batch-fill the underlying cache for ``node_ids`` (one index pass)."""
        self._neighborhood.warm(node_ids)

    def warm_degrees(self, node_ids) -> None:
        """Batch-fill only the degree cache (no list materialization)."""
        self._neighborhood.warm_degrees(node_ids)

    def neighbor_positions(self, node_id: int) -> np.ndarray:
        """Positions of the node's neighbors — the NE prerequisite in data form."""
        return self.positions[self.neighbors(node_id)]

    def are_neighbors(self, a: int, b: int) -> bool:
        if a == b:
            return False
        return self.radio.in_range(self.positions[a], self.positions[b])

    def mutual_visibility(self, node_ids: np.ndarray) -> bool:
        """Whether every pair in ``node_ids`` is within one hop of each other.

        This is the property the R_s <= R_c/2 assumption guarantees for nodes
        inside a single estimation area; tests assert it holds.
        """
        ids = np.asarray(node_ids, dtype=np.intp)
        if ids.size <= 1:
            return True
        pos = self.positions[ids]
        diff = pos[:, None, :] - pos[None, :, :]
        d2 = np.sum(diff * diff, axis=2)
        return bool((d2 <= self.radio.comm_radius**2).all())


def knowledge_exchange_cost(
    n_nodes: int,
    sizes: DataSizes,
    *,
    fields_per_node: int = 3,
) -> tuple[int, int]:
    """One round of local status sharing: every node broadcasts one beacon.

    Each beacon carries ``fields_per_node`` weight-sized fields (id, x, y by
    default).  Returns ``(total_bytes, total_messages)``.  Amortized over the
    sharing period (days), this is the "little communication overhead" of
    §V-D.
    """
    if n_nodes < 0:
        raise ValueError("n_nodes must be non-negative")
    per_msg = sizes.header + fields_per_node * sizes.weight
    return per_msg * n_nodes, n_nodes
