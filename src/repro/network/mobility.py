"""Node mobility models (§V-D's "mobile sensor nodes" uncertain factor).

The paper assumes static nodes and notes that CDPF-NE "needs to be applied
carefully" when nodes move.  These models drift the *physical* positions
while node programs keep computing with their stale *believed* positions —
exactly the gap mobility opens up in a deployment whose localization is
refreshed only occasionally.

All models are pure: ``advance(positions, dt, rng) -> new positions``, so the
harness decides when to re-localize (copy physical back into believed).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RandomDriftMobility", "GroupDriftMobility"]


@dataclass(frozen=True)
class RandomDriftMobility:
    """Independent Brownian drift: each node moves N(0, (speed_std * dt)^2) per step.

    ``speed_std`` is in m/s; the paper's "rarely move fast" regime is
    ~0.01-0.1 m/s (vegetation sway, buoy drift), the stress regime >= 0.5.
    """

    speed_std: float = 0.05

    def __post_init__(self) -> None:
        if self.speed_std < 0:
            raise ValueError(f"speed_std must be non-negative, got {self.speed_std}")

    def advance(
        self, positions: np.ndarray, dt: float, rng: np.random.Generator
    ) -> np.ndarray:
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        positions = np.asarray(positions, dtype=np.float64)
        return positions + rng.normal(0.0, self.speed_std * dt, size=positions.shape)


@dataclass(frozen=True)
class GroupDriftMobility:
    """Coherent drift: the whole field translates with a common velocity.

    Models platform motion (a drifting sensor raft).  The *relative*
    geometry stays intact, so distance-based mechanisms (contributions,
    division) survive while absolute estimates shear — a diagnostic
    contrast to :class:`RandomDriftMobility`.
    """

    velocity: tuple[float, float] = (0.1, 0.0)

    def advance(
        self, positions: np.ndarray, dt: float, rng: np.random.Generator
    ) -> np.ndarray:
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        positions = np.asarray(positions, dtype=np.float64)
        return positions + np.asarray(self.velocity, dtype=np.float64) * dt
