"""Slotted-MAC latency: how many transmission slots a communication phase needs.

The paper's second §I motivation: "convergecast communication introduces a
long delay, as the computational center has to receive messages in a
sequential order."  The medium's ledger counts messages; this module
schedules them into *time slots* under the protocol model's spatial-reuse
constraint, yielding the per-iteration latency each algorithm pays:

* :func:`broadcast_round_slots` — one-hop broadcast phases (CDPF/SDPF
  propagation, measurement sharing): transmitters whose receiver
  neighborhoods overlap must serialize; far-apart ones reuse the channel.
* :func:`convergecast_slots` — multi-hop unicast batches (CPF/DPF): hop j+1
  of a message waits for hop j (precedence) and for conflicting
  transmissions (interference); the makespan is computed by list scheduling.

Both model an idealized collision-free TDMA — a *lower bound* on what any
real MAC achieves, which is the right instrument for comparing algorithms.
Conflicts use the conservative disk rule: two transmitters conflict when any
intended receiver of one lies within the interference radius of the other.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .radio import RadioModel

__all__ = ["Transmission", "broadcast_round_slots", "convergecast_slots", "conflict_matrix"]


@dataclass(frozen=True)
class Transmission:
    """One radio transmission: a sender and its intended receiver position(s)."""

    sender_position: np.ndarray
    receiver_positions: np.ndarray  # (r, 2); for broadcasts, all in-range nodes

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "sender_position", np.asarray(self.sender_position, dtype=np.float64)
        )
        rp = np.atleast_2d(np.asarray(self.receiver_positions, dtype=np.float64))
        object.__setattr__(self, "receiver_positions", rp)


def conflict_matrix(transmissions: list[Transmission], radio: RadioModel) -> np.ndarray:
    """Symmetric boolean matrix: [i, j] True iff i and j cannot share a slot.

    i conflicts with j when some intended receiver of i is within j's
    interference radius (or vice versa).  A transmission never conflicts
    with itself.
    """
    n = len(transmissions)
    conflicts = np.zeros((n, n), dtype=bool)
    r_int = radio.interference_radius
    for i in range(n):
        for j in range(i + 1, n):
            ti, tj = transmissions[i], transmissions[j]
            d_i = np.sqrt(
                np.sum((ti.receiver_positions - tj.sender_position) ** 2, axis=1)
            )
            d_j = np.sqrt(
                np.sum((tj.receiver_positions - ti.sender_position) ** 2, axis=1)
            )
            if (d_i <= r_int).any() or (d_j <= r_int).any():
                conflicts[i, j] = conflicts[j, i] = True
    return conflicts


def _greedy_coloring(conflicts: np.ndarray) -> np.ndarray:
    """Slot assignment by greedy coloring in descending-degree order."""
    n = conflicts.shape[0]
    order = np.argsort(-conflicts.sum(axis=1), kind="stable")
    colors = np.full(n, -1, dtype=np.int64)
    for v in order:
        used = set(colors[conflicts[v]].tolist()) - {-1}
        c = 0
        while c in used:
            c += 1
        colors[v] = c
    return colors


def broadcast_round_slots(
    sender_positions: np.ndarray,
    radio: RadioModel,
) -> int:
    """Slots needed for every sender to complete one one-hop broadcast.

    Broadcast receivers are everything within the communication radius, so
    two broadcasts conflict when the senders are within
    ``comm_radius + interference_radius`` of each other (their coverage
    disks can contain a common receiver).
    """
    senders = np.atleast_2d(np.asarray(sender_positions, dtype=np.float64))
    n = senders.shape[0]
    if n == 0:
        return 0
    limit = radio.comm_radius + radio.interference_radius
    diff = senders[:, None, :] - senders[None, :, :]
    dist = np.sqrt(np.sum(diff * diff, axis=2))
    conflicts = dist <= limit
    np.fill_diagonal(conflicts, False)
    return int(_greedy_coloring(conflicts).max()) + 1


def convergecast_slots(
    paths: list[list[int]],
    positions: np.ndarray,
    radio: RadioModel,
) -> int:
    """Makespan (slots) to deliver every multi-hop message to its destination.

    ``paths`` are node-id routes (CPF's measurement routes); each hop is one
    unicast transmission whose only intended receiver is the next node.
    List scheduling: each slot greedily packs precedence-ready transmissions
    that are mutually conflict-free.
    """
    positions = np.asarray(positions, dtype=np.float64)
    hops: list[Transmission] = []
    chain_of: list[tuple[int, int]] = []  # (message index, hop index)
    for mi, path in enumerate(paths):
        if len(path) < 2:
            continue
        for hi, (a, b) in enumerate(zip(path[:-1], path[1:])):
            hops.append(
                Transmission(
                    sender_position=positions[a],
                    receiver_positions=positions[b][None, :],
                )
            )
            chain_of.append((mi, hi))
    if not hops:
        return 0

    conflicts = conflict_matrix(hops, radio)
    n = len(hops)
    done = np.zeros(n, dtype=bool)
    progress = {mi: 0 for mi, _ in chain_of}  # next hop index per message
    slots = 0
    remaining = n
    while remaining:
        slots += 1
        scheduled: list[int] = []
        # ready = next unfinished hop of each message, greedy by index
        for v in range(n):
            if done[v]:
                continue
            mi, hi = chain_of[v]
            if progress[mi] != hi:
                continue
            if any(conflicts[v, u] for u in scheduled):
                continue
            scheduled.append(v)
        if not scheduled:  # cannot happen with a correct ready set
            raise RuntimeError("scheduler stalled")
        for v in scheduled:
            done[v] = True
            mi, _ = chain_of[v]
            progress[mi] += 1
            remaining -= 1
    return slots
