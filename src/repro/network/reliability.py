"""Bounded ack/retransmit reliability for unicast paths over a lossy medium.

CPF's convergecast is the one traffic pattern in the system with no overhear
redundancy: a measurement walks a single multi-hop path and a single lost hop
kills it.  Real deployments answer this with hop-by-hop ARQ — explicit acks
and a bounded number of retransmissions — which is what this layer models.
Every attempt (data and ack alike) is charged to the medium's accounting, so
the cost figures show what reliability actually buys and what it costs:
under loss, CPF's convergecast bytes grow by roughly ``1 / (1 - p)`` per hop
plus the ack overhead, while CDPF's overheard aggregation pays nothing.

Mechanics per hop ``a -> b``:

1. ``a`` transmits the data copy (charged).  A relay hop forwards without
   filing the message in an inbox; the final hop delivers to the destination.
2. On success, ``b`` returns an :class:`~repro.network.messages.AckMessage`
   (charged under ``control``).  A lost ack triggers a retransmission of
   data the receiver already has; the receiver suppresses the duplicate by
   the message's :meth:`~repro.network.messages.Message.dedupe_key` — the
   standard stop-and-wait dedupe, evaluated harness-side.
3. After ``1 + max_retries`` failed data attempts the hop is declared dead.
   With ``reroute`` enabled and a spatial index available, the sender
   blacklists the dead next hop and re-runs greedy geographic forwarding
   around it (:func:`~repro.network.routing.greedy_path` with ``exclude``) —
   the local route repair a timeout makes locally observable.  Repairs are
   bounded by ``max_route_repairs`` per packet.

A crashed *sender* cannot retransmit: its send is recorded as dropped by the
medium and the packet dies where it stands.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .medium import Delivery, Medium
from .messages import AckMessage, Message
from .radio import RadioModel
from .routing import RoutingError, greedy_path
from .spatial import GridIndex

__all__ = ["ReliabilityConfig", "ReliableUnicast"]

_EMPTY = np.array([], dtype=np.intp)


@dataclass(frozen=True)
class ReliabilityConfig:
    """ARQ knobs: attempts are bounded so a dead link cannot spin forever."""

    max_retries: int = 2  # retransmissions per hop beyond the first attempt
    ack: bool = True  # charge explicit per-hop acks (and expose them to loss)
    reroute: bool = True  # greedy route repair around a dead next hop
    max_route_repairs: int = 2  # repairs per packet

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.max_route_repairs < 0:
            raise ValueError(
                f"max_route_repairs must be >= 0, got {self.max_route_repairs}"
            )


class ReliableUnicast:
    """Hop-by-hop ARQ over a :class:`~repro.network.medium.Medium`.

    Parameters
    ----------
    medium:
        The (typically lossy) medium to send through.
    config:
        ARQ bounds; defaults are stop-and-wait with 2 retries and route repair.
    index, radio:
        Optional spatial index + radio model enabling route repair; without
        them a dead hop simply kills the packet.
    """

    def __init__(
        self,
        medium: Medium,
        config: ReliabilityConfig | None = None,
        *,
        index: GridIndex | None = None,
        radio: RadioModel | None = None,
    ) -> None:
        self.medium = medium
        self.config = config if config is not None else ReliabilityConfig()
        self._index = index
        self._radio = radio
        #: next hops declared dead by timeout (kept across packets: a crashed
        #: node stays crashed; a congested one costs only a detour)
        self.blacklist: set[int] = set()
        self._delivered_keys: set[tuple] = set()

    # -- checkpoint protocol -------------------------------------------------

    def snapshot(self) -> dict:
        """The timeout blacklist; ``_delivered_keys`` is not carried because
        its entries embed ``id(message)`` — they suppress duplicates within
        one convergecast round only, and a checkpoint boundary is never
        inside a round."""
        return {"blacklist": sorted(self.blacklist)}

    def restore(self, state: dict) -> None:
        self.blacklist = set(int(i) for i in state["blacklist"])
        self._delivered_keys = set()

    # ------------------------------------------------------------------

    def send_many(self, requests, iteration: int) -> list[Delivery | None]:
        """Send a round of path transmissions; returns one result per request.

        ``requests`` is a sequence of ``(path, message)`` pairs where ``path``
        is either the hop list itself or a zero-arg callable resolving to one
        (or to ``None`` for "unroutable, skip").  Callables are invoked
        immediately before their packet is sent, so route state accumulated by
        earlier packets in the round — the timeout blacklist grown by route
        repair — feeds later routes exactly as in a sequential send loop.

        ARQ is stop-and-wait: each packet's hop outcomes decide its next
        transmission, so the packets themselves run sequentially (the batched
        fan-out lives a layer down, in the medium's broadcast rounds); this
        is the enqueue+flush *shape* for callers, not a vectorized kernel.
        Returns ``None`` for requests whose path resolved to ``None``.
        """
        out: list[Delivery | None] = []
        for path, message in requests:
            if callable(path):
                path = path()
            if path is None:
                out.append(None)
                continue
            out.append(self.send_path(path, message, iteration))
        return out

    def send_path(self, path: list[int], message: Message, iteration: int) -> Delivery:
        """Send ``message`` along ``path`` with per-hop ARQ; returns the
        aggregate delivery (receivers == [dest] on success)."""
        if len(path) < 2:
            raise ValueError("a path needs at least a sender and a receiver")
        current = [int(p) for p in path]
        dest = current[-1]
        total_bytes = 0
        total_messages = 0
        repairs = 0
        i = 0
        while i < len(current) - 1:
            a, b = current[i], current[i + 1]
            status, hop_bytes, hop_messages = self._send_hop(
                a, b, message, iteration, is_dest=(b == dest)
            )
            total_bytes += hop_bytes
            total_messages += hop_messages
            if status == "ok":
                i += 1
                continue
            if status == "delayed":
                return Delivery(
                    receivers=_EMPTY,
                    n_bytes=total_bytes,
                    n_messages=total_messages,
                    delayed=np.array([dest], dtype=np.intp),
                )
            if status == "sender_dead":
                # the packet died in a crashed node's queue; no repair possible
                break
            # hop timed out: try to route around the dead next hop
            if (
                status == "hop_dead"
                and self.config.reroute
                and repairs < self.config.max_route_repairs
                and self._index is not None
                and self._radio is not None
                and b != dest
            ):
                self.blacklist.add(b)
                try:
                    tail = greedy_path(
                        self._index, a, dest, self._radio, exclude=self.blacklist
                    )
                except (RoutingError, ValueError):
                    break
                current = current[:i] + tail  # tail starts at a
                repairs += 1
                continue
            break
        else:
            # every hop acknowledged: the packet reached the destination
            return Delivery(
                receivers=np.array([dest], dtype=np.intp),
                n_bytes=total_bytes,
                n_messages=total_messages,
            )
        return Delivery(
            receivers=_EMPTY,
            n_bytes=total_bytes,
            n_messages=total_messages,
            dropped=np.array([dest], dtype=np.intp),
        )

    # ------------------------------------------------------------------

    def _send_hop(
        self, a: int, b: int, message: Message, iteration: int, *, is_dest: bool
    ) -> tuple[str, int, int]:
        """One stop-and-wait hop.  Returns (status, bytes, messages) where
        status is 'ok' | 'delayed' | 'hop_dead' | 'sender_dead'."""
        n_bytes = 0
        n_messages = 0
        data_delivered = False
        for _attempt in range(1 + self.config.max_retries):
            deliver_to_inbox = (
                is_dest
                and not data_delivered
                and message.dedupe_key() not in self._delivered_keys
            )
            try:
                d = self.medium.unicast(
                    a, b, message, iteration, deliver_to_inbox=deliver_to_inbox
                )
            except RuntimeError:
                # asleep sender / geometry: not recoverable by retrying
                return ("hop_dead", n_bytes, n_messages)
            n_bytes += d.n_bytes
            n_messages += d.n_messages
            if d.n_messages == 0:
                # crashed sender: the medium recorded the silent drop
                return ("sender_dead", n_bytes, n_messages)
            if d.delayed.size:
                if is_dest:
                    # parked for next iteration: arrives, but late
                    return ("delayed", n_bytes, n_messages)
                # relay-side MAC delay: forwarding continues next slot
                data_delivered = True
            elif d.receivers.size:
                data_delivered = True
                if is_dest:
                    self._delivered_keys.add(message.dedupe_key())
            if not data_delivered:
                continue  # data copy lost: retransmit
            if not self.config.ack:
                return ("ok", n_bytes, n_messages)
            ack = AckMessage(sender=b, iteration=iteration)
            try:
                ad = self.medium.unicast(
                    b, a, ack, iteration, deliver_to_inbox=False
                )
            except RuntimeError:
                return ("hop_dead", n_bytes, n_messages)
            n_bytes += ad.n_bytes
            n_messages += ad.n_messages
            if ad.receivers.size or ad.delayed.size:
                return ("ok", n_bytes, n_messages)
            # ack lost: the sender times out and retransmits a duplicate,
            # which the receiver's dedupe_key suppression discards
        if data_delivered:
            # data arrived but every ack was lost: the hop succeeded even
            # though the sender cannot know it — deliver-and-pray outcome;
            # count it as success (the copy IS at b / the destination)
            return ("ok", n_bytes, n_messages)
        return ("hop_dead", n_bytes, n_messages)
