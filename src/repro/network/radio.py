"""Radio propagation: the Gupta-Kumar protocol model (§II-C2).

Transmission and interference depend only on Euclidean distance:

* node ``j`` can *hear* node ``i`` iff ``|x_i - x_j| <= R_c`` (the
  communication radius);
* a concurrent transmission from ``k`` *destroys* the reception at ``j``
  iff ``|x_k - x_j| <= (1 + delta) * R_c``.

The trackers run over an idealized MAC that serializes transmissions within a
phase (no collisions — matching the paper's cost accounting, which counts
every transmission as delivered).  The collision model is still implemented
and used by the robustness ablation to inject loss.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RadioModel", "protocol_model_receptions"]


@dataclass(frozen=True)
class RadioModel:
    """Static radio parameters.

    The paper assumes the sensing radius is at most half the communication
    radius (§II-C2) — that inequality is what makes overhearing-based weight
    aggregation complete (every node in an estimation area hears every other
    one).  :meth:`validate_against_sensing` enforces it.
    """

    comm_radius: float = 30.0
    interference_delta: float = 0.0

    def __post_init__(self) -> None:
        if self.comm_radius <= 0:
            raise ValueError(f"comm_radius must be positive, got {self.comm_radius}")
        if self.interference_delta < 0:
            raise ValueError(
                f"interference_delta must be non-negative, got {self.interference_delta}"
            )

    @property
    def interference_radius(self) -> float:
        return (1.0 + self.interference_delta) * self.comm_radius

    def validate_against_sensing(self, sensing_radius: float) -> None:
        """Enforce the paper's assumption ``R_s <= R_c / 2``."""
        if sensing_radius > self.comm_radius / 2.0 + 1e-12:
            raise ValueError(
                f"sensing radius {sensing_radius} violates the paper's assumption "
                f"R_s <= R_c/2 (R_c = {self.comm_radius}); overhearing-based "
                "aggregation is not guaranteed complete"
            )

    def in_range(self, p: np.ndarray, q: np.ndarray) -> bool:
        d = np.asarray(p, dtype=np.float64) - np.asarray(q, dtype=np.float64)
        return float(d @ d) <= self.comm_radius**2


def protocol_model_receptions(
    tx_positions: np.ndarray,
    rx_positions: np.ndarray,
    radio: RadioModel,
) -> np.ndarray:
    """Concurrent-transmission outcome under the protocol model.

    Parameters
    ----------
    tx_positions:
        ``(t, 2)`` positions of simultaneously transmitting nodes.
    rx_positions:
        ``(r, 2)`` positions of listening nodes.

    Returns
    -------
    ``(r, t)`` boolean matrix: entry ``[j, i]`` is True iff receiver ``j``
    successfully decodes transmitter ``i`` — i.e. ``i`` is within the
    communication radius of ``j`` and **no other** transmitter is within the
    interference radius of ``j``.
    """
    tx = np.atleast_2d(np.asarray(tx_positions, dtype=np.float64))
    rx = np.atleast_2d(np.asarray(rx_positions, dtype=np.float64))
    # (r, t) pairwise distances, vectorized via broadcasting.
    diff = rx[:, None, :] - tx[None, :, :]
    dist = np.sqrt(np.sum(diff * diff, axis=2))
    audible = dist <= radio.comm_radius
    interferers = dist <= radio.interference_radius
    n_interferers = interferers.sum(axis=1)
    # Reception of i at j succeeds iff i is audible and the ONLY transmitter
    # inside j's interference radius (i itself counts as one).
    sole = (n_interferers[:, None] - interferers.astype(np.intp)) == 0
    return audible & sole
