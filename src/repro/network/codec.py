"""Wire codec: pack messages into real byte strings matching the byte model.

The cost ledger charges each message its Table-I size (``Dp=16, Dm=4,
Dw=4``); this module *realizes* that size on a 32-bit wire format, proving
the accounting is achievable rather than aspirational:

* a particle state is four fixed-point int32 fields (the paper: "a particle
  includes four integers");
* a measurement or a weight is one fixed-point int32;
* quantized measurements pack to ``ceil(bits / 8)`` bytes.

Fixed-point scales: positions/velocities at 2^-16 m (sub-millimeter over a
+-32 km range), bearings at 2^-29 rad, weights at 2^-30 in [0, 2).  Encoding
is lossy exactly by those quantization steps; round-trip property tests bound
the error.

A small frame header (message type + sender id + iteration) is defined for
completeness; Table I's accounting ignores headers, so :func:`encode` omits
the frame by default and the framed variant matches ``DataSizes(header=7)``.
"""

from __future__ import annotations

import struct

import numpy as np

from .messages import (
    MeasurementMessage,
    Message,
    ParticleMessage,
    QuantizedMeasurementMessage,
    TotalWeightMessage,
    WeightReportMessage,
)

__all__ = [
    "POSITION_SCALE",
    "ANGLE_SCALE",
    "WEIGHT_SCALE",
    "encode_particles",
    "decode_particles",
    "encode_scalar",
    "decode_scalar",
    "encode",
    "decode",
    "wire_size",
    "CodecError",
]

POSITION_SCALE = 2.0**-16  # meters per LSB for positions and velocities
ANGLE_SCALE = 2.0**-29  # radians per LSB for bearings
WEIGHT_SCALE = 2.0**-30  # weight units per LSB (normalized weights < 2)

_I32_MIN, _I32_MAX = -(2**31), 2**31 - 1


class CodecError(ValueError):
    """Raised when a value does not fit the wire format."""


def _to_fixed(values: np.ndarray, scale: float) -> np.ndarray:
    scaled = np.round(np.asarray(values, dtype=np.float64) / scale)
    if (scaled < _I32_MIN).any() or (scaled > _I32_MAX).any():
        raise CodecError(
            f"value out of int32 fixed-point range at scale {scale}"
        )
    return scaled.astype(np.int32)


def _from_fixed(raw: np.ndarray, scale: float) -> np.ndarray:
    return np.asarray(raw, dtype=np.float64) * scale


def encode_particles(states: np.ndarray, weights: np.ndarray) -> bytes:
    """Pack n particles as n * (4 + 1) int32 values: exactly n*(Dp+Dw) bytes."""
    states = np.atleast_2d(np.asarray(states, dtype=np.float64))
    weights = np.atleast_1d(np.asarray(weights, dtype=np.float64))
    if states.shape[1] != 4 or states.shape[0] != weights.shape[0]:
        raise CodecError("states must be (n, 4) with matching weights")
    fixed_states = _to_fixed(states, POSITION_SCALE)
    fixed_weights = _to_fixed(weights, WEIGHT_SCALE)
    out = bytearray()
    for i in range(states.shape[0]):
        out += struct.pack("<4i", *fixed_states[i])
        out += struct.pack("<i", int(fixed_weights[i]))
    return bytes(out)


def decode_particles(payload: bytes) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`encode_particles`."""
    record = 5 * 4
    if len(payload) % record != 0:
        raise CodecError(f"payload length {len(payload)} is not a particle multiple")
    n = len(payload) // record
    states = np.empty((n, 4))
    weights = np.empty(n)
    for i in range(n):
        vals = struct.unpack_from("<5i", payload, i * record)
        states[i] = _from_fixed(np.array(vals[:4]), POSITION_SCALE)
        weights[i] = float(_from_fixed(np.array([vals[4]]), WEIGHT_SCALE)[0])
    return states, weights


def encode_scalar(value: float, scale: float) -> bytes:
    """One fixed-point int32 — the Dm / Dw unit."""
    return struct.pack("<i", int(_to_fixed(np.array([value]), scale)[0]))


def decode_scalar(payload: bytes, scale: float) -> float:
    if len(payload) != 4:
        raise CodecError("scalar payload must be 4 bytes")
    return float(_from_fixed(np.array(struct.unpack("<i", payload)), scale)[0])


# ---------------------------------------------------------------------------
# whole-message encoding
# ---------------------------------------------------------------------------

_TYPE_IDS = {
    ParticleMessage: 1,
    MeasurementMessage: 2,
    WeightReportMessage: 3,
    TotalWeightMessage: 4,
    QuantizedMeasurementMessage: 5,
}


def encode(message: Message, *, framed: bool = False) -> bytes:
    """Serialize a message payload; ``framed`` prepends type/sender/iteration.

    The unframed length equals ``message.payload_bytes(DataSizes())`` for all
    supported types (asserted by tests) — the Table I accounting, realized.
    """
    if isinstance(message, ParticleMessage):
        payload = encode_particles(message.states, message.weights)
    elif isinstance(message, MeasurementMessage):
        payload = encode_scalar(message.value, ANGLE_SCALE)
    elif isinstance(message, WeightReportMessage):
        payload = b"".join(encode_scalar(float(w), WEIGHT_SCALE) for w in message.weights)
    elif isinstance(message, TotalWeightMessage):
        payload = encode_scalar(message.total_weight, WEIGHT_SCALE)
    elif isinstance(message, QuantizedMeasurementMessage):
        n_bytes = max(1, (message.bits + 7) // 8)
        payload = int(message.code).to_bytes(n_bytes, "little")
    else:
        raise CodecError(f"no wire format for {type(message).__name__}")
    if framed:
        header = struct.pack(
            "<BHi", _TYPE_IDS[type(message)], message.sender & 0xFFFF, message.iteration
        )
        return header + payload
    return payload


def decode(payload: bytes, message_type: type, **meta):
    """Reconstruct a message of a known type from its unframed payload.

    ``meta`` supplies the out-of-band fields (sender, iteration, bits...)
    that an unframed payload does not carry.
    """
    sender = meta.get("sender", 0)
    iteration = meta.get("iteration", 0)
    if message_type is ParticleMessage:
        states, weights = decode_particles(payload)
        return ParticleMessage(sender=sender, iteration=iteration, states=states, weights=weights)
    if message_type is MeasurementMessage:
        return MeasurementMessage(
            sender=sender, iteration=iteration, value=decode_scalar(payload, ANGLE_SCALE)
        )
    if message_type is WeightReportMessage:
        if len(payload) % 4 != 0:
            raise CodecError("weight report payload must be int32-aligned")
        weights = [
            decode_scalar(payload[i : i + 4], WEIGHT_SCALE)
            for i in range(0, len(payload), 4)
        ]
        return WeightReportMessage(
            sender=sender, iteration=iteration, weights=np.array(weights)
        )
    if message_type is TotalWeightMessage:
        return TotalWeightMessage(
            sender=sender,
            iteration=iteration,
            total_weight=decode_scalar(payload, WEIGHT_SCALE),
        )
    if message_type is QuantizedMeasurementMessage:
        bits = meta["bits"]
        return QuantizedMeasurementMessage(
            sender=sender,
            iteration=iteration,
            code=int.from_bytes(payload, "little"),
            bits=bits,
        )
    raise CodecError(f"no wire format for {message_type.__name__}")


def wire_size(message: Message) -> int:
    """Unframed wire size in bytes (== the ledger's charge with header=0)."""
    return len(encode(message))
