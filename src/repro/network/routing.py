"""Multi-hop routing for CPF's convergecast.

CPF needs every detecting node to deliver its measurement to the sink, and
Table I charges this as ``D_m * H_i`` — one message per hop.  Two strategies:

* :func:`greedy_path` — greedy geographic forwarding: each relay hands the
  packet to its neighbor closest to the sink.  At the paper's densities
  (>= 5 nodes / 100 m^2, ~140+ neighbors per node) greedy forwarding never
  meets a void, so no perimeter-mode fallback is needed; we raise if it ever
  stalls so silent misrouting is impossible.
* :func:`hop_counts_bfs` — exact minimum hop counts from a source to all
  nodes, via frontier-expansion BFS over the grid index (no materialized
  adjacency: at density 40 the full adjacency would hold ~18 M edges).

The paper's observation that "any node can propagate the particle data to the
sink node in the center of the network within four hops at the most" is a
direct consequence of the 200 m field and the 30 m radius; the routing tests
verify it.
"""

from __future__ import annotations

import numpy as np

from .radio import RadioModel
from .spatial import GridIndex

__all__ = ["greedy_path", "hop_counts_bfs", "RoutingError", "path_hop_count"]


class RoutingError(RuntimeError):
    """Raised when a route cannot be constructed (void, unreachable sink)."""


def greedy_path(
    index: GridIndex,
    source: int,
    sink: int,
    radio: RadioModel,
    *,
    max_hops: int = 64,
    exclude: set[int] | None = None,
) -> list[int]:
    """Greedy geographic route from ``source`` to ``sink`` (inclusive).

    Returns the node-id path ``[source, ..., sink]``.  Raises
    :class:`RoutingError` on a local minimum (no neighbor closer to the sink)
    or when ``max_hops`` is exceeded.

    ``exclude`` removes nodes from *relay* selection (route repair around
    dead or blacklisted forwarders — the reliability layer's timeout signal);
    the source and a direct final hop to the sink are never excluded.
    """
    positions = index.positions
    n = positions.shape[0]
    if not (0 <= source < n and 0 <= sink < n):
        raise ValueError(f"source/sink out of range [0, {n})")
    sink_pos = positions[sink]
    path = [source]
    current = source
    excluded = {int(i) for i in exclude} if exclude else None
    for _ in range(max_hops):
        if current == sink:
            return path
        cur_pos = positions[current]
        if radio.in_range(cur_pos, sink_pos):
            path.append(sink)
            return path
        neigh = index.query_disk(cur_pos, radio.comm_radius)
        neigh = neigh[neigh != current]
        if excluded and neigh.size:
            neigh = neigh[~np.isin(neigh, list(excluded))]
        if neigh.size == 0:
            raise RoutingError(f"node {current} has no neighbors; cannot reach sink {sink}")
        d2 = np.sum((positions[neigh] - sink_pos) ** 2, axis=1)
        best = int(neigh[np.argmin(d2)])
        cur_d2 = float(np.sum((cur_pos - sink_pos) ** 2))
        if d2.min() >= cur_d2:
            raise RoutingError(
                f"greedy forwarding stuck at node {current} (local minimum toward sink {sink})"
            )
        path.append(best)
        current = best
    raise RoutingError(f"route {source}->{sink} exceeded max_hops={max_hops}")


def path_hop_count(path: list[int]) -> int:
    """Number of radio transmissions a path costs (= len - 1)."""
    if len(path) < 1:
        raise ValueError("empty path")
    return len(path) - 1


def hop_counts_bfs(
    index: GridIndex,
    source: int,
    radio: RadioModel,
) -> np.ndarray:
    """Minimum hop count from ``source`` to every node (-1 if unreachable).

    Frontier-expansion BFS: each layer gathers the not-yet-visited nodes
    within the communication radius of any frontier node via grid queries.
    Work is proportional to the number of (node, candidate) pairs touched,
    and every node enters the frontier at most once.
    """
    positions = index.positions
    n = positions.shape[0]
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range [0, {n})")
    hops = np.full(n, -1, dtype=np.int64)
    hops[source] = 0
    frontier = np.array([source], dtype=np.intp)
    level = 0
    while frontier.size:
        level += 1
        hits = index.query_disk_many(positions[frontier], radio.comm_radius)
        fresh = hits[hops[hits] < 0]
        if fresh.size == 0:
            break
        hops[fresh] = level
        frontier = fresh
    return hops
