"""Shared per-deployment neighborhood cache: one grid index, one neighbor table.

Before this module the comm-radius :class:`~repro.network.spatial.GridIndex`
was built twice per scenario — once by :class:`~repro.network.medium.Medium`
for broadcast fan-out and once by
:class:`~repro.network.topology.NeighborTables` for the CDPF-NE knowledge
prerequisite — and every broadcast re-ran a disk query whose answer never
changes on a static deployment.  :class:`NeighborhoodCache` owns both
artifacts exactly once:

* the comm-radius grid index, built lazily on first query;
* per-node sorted one-hop neighbor lists (excluding the node itself),
  computed on first access and cached read-only.

The cache is *geometric only*: availability (sleep/crash), partitions and
link-loss state live in the medium and are applied on top of the cached
neighbor lists at delivery time.  The cache therefore only invalidates on
**mobility** (positions replaced), while the medium's availability-filtered
overlay additionally invalidates on fault mutations via
``Medium._rebuild_available``.

``epoch`` increments on every invalidation so consumers holding derived
overlays (the medium's offered-receiver cache) can cheaply detect staleness.
"""

from __future__ import annotations

import numpy as np

from .spatial import GridIndex

__all__ = ["NeighborhoodCache"]


class NeighborhoodCache:
    """Lazily built, shared neighborhood structures over one set of positions.

    Parameters
    ----------
    positions:
        ``(n, 2)`` node coordinates.  Not copied; treat as immutable — call
        :meth:`rebind` to move nodes.
    radius:
        The communication radius; both the grid cell size and the neighbor
        cut-off.
    """

    def __init__(self, positions: np.ndarray, radius: float) -> None:
        if radius <= 0.0:
            raise ValueError(f"radius must be positive, got {radius}")
        self.positions = np.asarray(positions, dtype=np.float64)
        self.radius = float(radius)
        self.epoch = 0
        self._index: GridIndex | None = None
        self._neighbors: dict[int, np.ndarray] = {}

    @property
    def n_nodes(self) -> int:
        return self.positions.shape[0]

    @property
    def index(self) -> GridIndex:
        """The comm-radius grid index, built once per (positions, radius)."""
        if self._index is None:
            self._index = GridIndex(self.positions, self.radius)
        return self._index

    def neighbors(self, node_id: int) -> np.ndarray:
        """Sorted ids within ``radius`` of the node, excluding the node itself.

        The membership test is :meth:`GridIndex.query_disk`'s, so the set is
        bit-identical to what a per-message disk query would return; only the
        order is canonical (sorted) instead of grid-cell order.
        """
        cached = self._neighbors.get(node_id)
        if cached is not None:
            return cached
        if not 0 <= node_id < self.n_nodes:
            raise ValueError(f"node id {node_id} out of range [0, {self.n_nodes})")
        hits = self.index.query_disk(self.positions[node_id], self.radius)
        result = np.sort(hits[hits != node_id])
        result.setflags(write=False)
        self._neighbors[node_id] = result
        return result

    def rebind(self, positions: np.ndarray) -> None:
        """Replace the positions (mobility): drops the index and every list."""
        positions = np.asarray(positions, dtype=np.float64)
        if positions.shape != self.positions.shape:
            raise ValueError(
                f"position shape {positions.shape} != {self.positions.shape}"
            )
        self.positions = positions
        self.invalidate()

    def invalidate(self) -> None:
        self._index = None
        self._neighbors.clear()
        self.epoch += 1
