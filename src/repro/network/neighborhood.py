"""Shared per-deployment neighborhood cache: one grid index, one neighbor table.

Before this module the comm-radius :class:`~repro.network.spatial.GridIndex`
was built twice per scenario — once by :class:`~repro.network.medium.Medium`
for broadcast fan-out and once by
:class:`~repro.network.topology.NeighborTables` for the CDPF-NE knowledge
prerequisite — and every broadcast re-ran a disk query whose answer never
changes on a static deployment.  :class:`NeighborhoodCache` owns both
artifacts exactly once:

* the comm-radius grid index, built lazily on first query;
* per-node sorted one-hop neighbor lists (excluding the node itself),
  computed on first access and cached read-only.

The cache is *geometric only*: availability (sleep/crash), partitions and
link-loss state live in the medium and are applied on top of the cached
neighbor lists at delivery time.  The cache therefore only invalidates on
**mobility** (positions replaced), while the medium's availability-filtered
overlay additionally invalidates on fault mutations via
``Medium._rebuild_available``.

``epoch`` increments on every invalidation so consumers holding derived
overlays (the medium's offered-receiver cache) can cheaply detect staleness.
"""

from __future__ import annotations

import numpy as np

from .spatial import GridIndex

__all__ = ["NeighborhoodCache"]


class NeighborhoodCache:
    """Lazily built, shared neighborhood structures over one set of positions.

    Parameters
    ----------
    positions:
        ``(n, 2)`` node coordinates.  Not copied; treat as immutable — call
        :meth:`rebind` to move nodes.
    radius:
        The communication radius; both the grid cell size and the neighbor
        cut-off.
    """

    def __init__(self, positions: np.ndarray, radius: float) -> None:
        if radius <= 0.0:
            raise ValueError(f"radius must be positive, got {radius}")
        self.positions = np.asarray(positions, dtype=np.float64)
        self.radius = float(radius)
        self.epoch = 0
        self._index: GridIndex | None = None
        self._neighbors: dict[int, np.ndarray] = {}
        self._have = np.zeros(self.positions.shape[0], dtype=bool)
        self._degree = np.full(self.positions.shape[0], -1, dtype=np.intp)
        self._kdtree = None
        self._kdtree_unavailable = False

    @property
    def n_nodes(self) -> int:
        return self.positions.shape[0]

    @property
    def index(self) -> GridIndex:
        """The comm-radius grid index, built once per (positions, radius)."""
        if self._index is None:
            self._index = GridIndex(self.positions, self.radius)
        return self._index

    def neighbors(self, node_id: int) -> np.ndarray:
        """Sorted ids within ``radius`` of the node, excluding the node itself.

        The membership test is :meth:`GridIndex.query_disk`'s, so the set is
        bit-identical to what a per-message disk query would return; only the
        order is canonical (sorted) instead of grid-cell order.
        """
        cached = self._neighbors.get(node_id)
        if cached is not None:
            return cached
        if not 0 <= node_id < self.n_nodes:
            raise ValueError(f"node id {node_id} out of range [0, {self.n_nodes})")
        hits = self.index.query_disk(self.positions[node_id], self.radius)
        result = np.sort(hits[hits != node_id])
        result.setflags(write=False)
        self._neighbors[node_id] = result
        self._have[node_id] = True
        self._degree[node_id] = result.size
        return result

    def degree(self, node_id: int) -> int:
        """Number of one-hop neighbors (list length, without building the list).

        Served from the degree cache when :meth:`warm_degrees` (or a prior
        list materialization) has filled it; falls back to
        ``len(self.neighbors(node_id))`` otherwise.
        """
        d = self._degree[node_id]
        if d >= 0:
            return int(d)
        return int(self.neighbors(node_id).shape[0])

    def _tree(self):
        """The scipy KD-tree over all positions, or None when scipy is absent."""
        if self._kdtree is None and not self._kdtree_unavailable:
            try:
                from scipy.spatial import cKDTree
            except ImportError:  # pragma: no cover - scipy present in CI
                self._kdtree_unavailable = True
            else:
                self._kdtree = cKDTree(self.positions)
        return self._kdtree

    def _batch_candidates(self, centers: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(point, center) candidate pairs covering every in-disk pair.

        Prefers a KD-tree sweep (scipy, if importable — a soft dependency
        with a pure-numpy :meth:`GridIndex.query_disk_batch` fallback)
        because the tree's candidate set is ~3x tighter than the grid's
        3x3-cell box.  The query radius is inflated by one part in 1e9 so
        the candidate set is a strict superset of the exact membership; the
        caller re-filters with the bitwise ``d2 <= r*r`` test either way.
        """
        if self._tree() is None:
            flat, offsets = self.index.query_disk_batch(centers, self.radius)
            ctr = np.repeat(
                np.arange(offsets.size - 1, dtype=np.intp), np.diff(offsets)
            )
            return flat, ctr
        from scipy.spatial import cKDTree

        coo = self._kdtree.sparse_distance_matrix(
            cKDTree(centers), self.radius * (1.0 + 1e-9), output_type="coo_matrix"
        )
        return coo.row.astype(np.intp), coo.col.astype(np.intp)

    def warm(self, node_ids) -> None:
        """Fill the cache for many nodes with one batched pass.

        The lock-step sweep backend (and any caller that knows the set of
        nodes an iteration will touch) uses this to replace N lazy
        ``query_disk`` misses with a single candidate sweep.  Each warmed
        list is bit-identical to what the lazy path would have cached: the
        membership test is ``query_disk``'s own ``d2 <= r * r`` expression
        applied on top of a superset candidate walk, and the stored order
        is the same ascending-id sort.
        """
        ids = np.asarray(node_ids, dtype=np.intp)
        if ids.size == 0:
            return
        if ids.min() < 0 or ids.max() >= self.n_nodes:
            raise ValueError(f"node ids out of range [0, {self.n_nodes})")
        missing = np.unique(ids[~self._have[ids]])
        if missing.size == 0:
            return
        centers = self.positions[missing]
        flat, ctr = self._batch_candidates(centers)
        if flat.size:
            d2 = np.sum((self.positions[flat] - centers[ctr]) ** 2, axis=1)
            keep = d2 <= self.radius * self.radius
            flat, ctr = flat[keep], ctr[keep]
        order = np.lexsort((flat, ctr))
        flat, ctr = flat[order], ctr[order]
        bounds = np.searchsorted(ctr, np.arange(missing.size + 1))
        for g, nid in enumerate(missing):
            hits = flat[bounds[g] : bounds[g + 1]]
            result = hits[hits != nid]  # ascending already (lexsort)
            result.setflags(write=False)
            self._neighbors[int(nid)] = result
            self._degree[nid] = result.size
        self._have[missing] = True

    def warm_degrees(self, node_ids) -> None:
        """Fill the degree cache without materializing neighbor lists.

        Degrees drive the paper's node-density terms (likelihood ``lambda``,
        the creation limit) far more often than the lists themselves are
        read, and a count costs much less than a list.  The count is exact
        by construction: the KD-tree is queried twice, at radius
        ``r * (1 - 1e-9)`` and ``r * (1 + 1e-9)``.  Any point passing the
        exact ``d2 <= r*r`` test lies inside the inflated ball, and any
        point inside the deflated ball passes the exact test (the margins
        dwarf the few-ULP disagreement between the tree's metric and the
        cache's squared-distance expression), so when both counts agree the
        exact count is pinned without looking at a single candidate row.
        Nodes whose two counts disagree — a neighbor sits in the 1e-9
        boundary band — fall back to the explicit candidate-row confirm, as
        does the whole batch when scipy is unavailable.
        """
        ids = np.asarray(node_ids, dtype=np.intp)
        if ids.size == 0:
            return
        if ids.min() < 0 or ids.max() >= self.n_nodes:
            raise ValueError(f"node ids out of range [0, {self.n_nodes})")
        missing = np.unique(ids[self._degree[ids] < 0])
        if missing.size == 0:
            return
        tree = self._tree()
        if tree is not None:
            centers = self.positions[missing]
            hi = tree.query_ball_point(
                centers, self.radius * (1.0 + 1e-9), return_length=True
            )
            lo = tree.query_ball_point(
                centers, self.radius * (1.0 - 1e-9), return_length=True
            )
            sure = hi == lo
            # the disk always contains the node itself; degree excludes it
            self._degree[missing[sure]] = hi[sure] - 1
            missing = missing[~sure]
            if missing.size == 0:
                return
        centers = self.positions[missing]
        flat, ctr = self._batch_candidates(centers)
        if flat.size:
            d2 = np.sum((self.positions[flat] - centers[ctr]) ** 2, axis=1)
            ctr = ctr[d2 <= self.radius * self.radius]
        counts = np.bincount(ctr, minlength=missing.size)
        self._degree[missing] = counts - 1

    def rebind(self, positions: np.ndarray) -> None:
        """Replace the positions (mobility): drops the index and every list."""
        positions = np.asarray(positions, dtype=np.float64)
        if positions.shape != self.positions.shape:
            raise ValueError(
                f"position shape {positions.shape} != {self.positions.shape}"
            )
        self.positions = positions
        self.invalidate()

    def invalidate(self) -> None:
        self._index = None
        self._kdtree = None
        self._neighbors.clear()
        self._have[:] = False
        self._degree[:] = -1
        self.epoch += 1
