"""Message types and the paper's byte-cost model.

The evaluation (§VI-B) assumes a 32-bit platform where a particle state is
four integers and a measurement or a weight is one integer each:

    Dp = 16 bytes   (particle: x, y, x', y')
    Dm = 4 bytes    (one measurement)
    Dw = 4 bytes    (one weight)

Every message class computes its own wire size from a :class:`DataSizes`
instance, so Table I's analytic formulas and the simulator's measured
accounting share a single source of truth.  ``header`` defaults to 0 to match
the paper's accounting (which ignores MAC/PHY framing); the energy ablation
sets it non-zero to show why *message count* dominates *byte count* in
duty-cycled networks.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

__all__ = [
    "DataSizes",
    "Message",
    "ParticleMessage",
    "MeasurementMessage",
    "WeightReportMessage",
    "TotalWeightMessage",
    "QueryMessage",
    "AckMessage",
    "QuantizedMeasurementMessage",
    "FilterStateMessage",
    "WakeupMessage",
    "EstimateReportMessage",
    "message_to_state",
    "message_from_state",
]


@dataclass(frozen=True)
class DataSizes:
    """Per-field wire sizes in bytes (paper defaults for a 32-bit platform)."""

    particle: int = 16  # Dp
    measurement: int = 4  # Dm
    weight: int = 4  # Dw
    header: int = 0  # per-message framing overhead (0 = paper's accounting)

    def __post_init__(self) -> None:
        for name in ("particle", "measurement", "weight", "header"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} size must be non-negative")


PAPER_SIZES = DataSizes()


@dataclass(frozen=True)
class Message:
    """Base class for everything that travels over the radio.

    Subclasses override :meth:`payload_bytes`; the total wire size adds the
    (configurable) header.  Messages are immutable so a broadcast can hand
    the *same* object to every receiver without aliasing hazards.
    """

    category: ClassVar[str] = "generic"

    def payload_bytes(self, sizes: DataSizes) -> int:
        raise NotImplementedError

    def size_bytes(self, sizes: DataSizes) -> int:
        return sizes.header + self.payload_bytes(sizes)

    def dedupe_key(self) -> tuple:
        """Stable identity for receiver-side duplicate suppression.

        A retransmission resends the *same* message object, so object
        identity plus (type, sender, iteration) is exactly the stop-and-wait
        sequence tag the reliability layer needs: retransmits of one message
        collapse, while two distinct messages from the same sender in the
        same iteration never do.
        """
        return (
            type(self).__name__,
            getattr(self, "sender", None),
            getattr(self, "iteration", None),
            id(self),
        )


def _as_readonly(a: np.ndarray, dtype=np.float64) -> np.ndarray:
    out = np.array(a, dtype=dtype, copy=True)
    out.setflags(write=False)
    return out


@dataclass(frozen=True)
class ParticleMessage(Message):
    """A batch of particles plus their weights, broadcast one hop.

    This is the *propagation* message of SDPF/CDPF/CDPF-NE.  Its payload is
    ``n * (Dp + Dw)``: the paper's propagation cost term.

    Attributes
    ----------
    states:
        ``(n, d)`` particle states (d = 4 for the CV model).
    weights:
        ``(n,)`` unnormalized weights.
    predicted_position:
        The sender's predicted target position (carried so recorders can
        evaluate the linear probability model consistently); charged at one
        particle's state cost only when ``carry_prediction`` is True.
    """

    category: ClassVar[str] = "propagation"

    sender: int
    iteration: int
    states: np.ndarray
    weights: np.ndarray
    predicted_position: np.ndarray | None = None
    carry_prediction: bool = False

    def __post_init__(self) -> None:
        states = np.atleast_2d(np.asarray(self.states, dtype=np.float64))
        weights = np.atleast_1d(np.asarray(self.weights, dtype=np.float64))
        if states.shape[0] != weights.shape[0]:
            raise ValueError(
                f"states/weights length mismatch: {states.shape[0]} vs {weights.shape[0]}"
            )
        if (weights < 0).any():
            raise ValueError("particle weights must be non-negative")
        object.__setattr__(self, "states", _as_readonly(states))
        object.__setattr__(self, "weights", _as_readonly(weights))
        if self.predicted_position is not None:
            object.__setattr__(
                self, "predicted_position", _as_readonly(self.predicted_position)
            )

    @property
    def n_particles(self) -> int:
        return self.states.shape[0]

    def payload_bytes(self, sizes: DataSizes) -> int:
        extra = sizes.particle if (self.carry_prediction and self.predicted_position is not None) else 0
        return self.n_particles * (sizes.particle + sizes.weight) + extra


@dataclass(frozen=True)
class MeasurementMessage(Message):
    """A single scalar measurement shared locally (or convergecast to a sink)."""

    category: ClassVar[str] = "measurement"

    sender: int
    iteration: int
    value: float
    sensor_position: np.ndarray | None = None

    def __post_init__(self) -> None:
        if not np.isfinite(self.value):
            raise ValueError(f"measurement must be finite, got {self.value}")
        if self.sensor_position is not None:
            object.__setattr__(self, "sensor_position", _as_readonly(self.sensor_position))

    def payload_bytes(self, sizes: DataSizes) -> int:
        return sizes.measurement


@dataclass(frozen=True)
class WeightReportMessage(Message):
    """SDPF: a node reports its particle weights to the global transceiver."""

    category: ClassVar[str] = "weight_aggregation"

    sender: int
    iteration: int
    weights: np.ndarray

    def __post_init__(self) -> None:
        weights = np.atleast_1d(np.asarray(self.weights, dtype=np.float64))
        if (weights < 0).any():
            raise ValueError("weights must be non-negative")
        object.__setattr__(self, "weights", _as_readonly(weights))

    def payload_bytes(self, sizes: DataSizes) -> int:
        return self.weights.shape[0] * sizes.weight


@dataclass(frozen=True)
class TotalWeightMessage(Message):
    """SDPF: the global transceiver broadcasts the aggregated total weight."""

    category: ClassVar[str] = "weight_aggregation"

    sender: int
    iteration: int
    total_weight: float

    def __post_init__(self) -> None:
        if not (np.isfinite(self.total_weight) and self.total_weight >= 0):
            raise ValueError(f"total weight must be finite and >= 0, got {self.total_weight}")

    def payload_bytes(self, sizes: DataSizes) -> int:
        return sizes.weight


@dataclass(frozen=True)
class QueryMessage(Message):
    """SDPF: transceiver's query in the three-way handshake (weight-sized)."""

    category: ClassVar[str] = "weight_aggregation"

    sender: int
    iteration: int

    def payload_bytes(self, sizes: DataSizes) -> int:
        return sizes.weight


@dataclass(frozen=True)
class AckMessage(Message):
    """Generic acknowledgement (weight-sized, header-dominated)."""

    category: ClassVar[str] = "control"

    sender: int
    iteration: int

    def payload_bytes(self, sizes: DataSizes) -> int:
        return sizes.weight


@dataclass(frozen=True)
class QuantizedMeasurementMessage(Message):
    """Compression-based DPF (Coates 2004): a measurement quantized to b bits."""

    category: ClassVar[str] = "measurement"

    sender: int
    iteration: int
    code: int
    bits: int

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise ValueError(f"bits must be positive, got {self.bits}")
        if not (0 <= self.code < 2**self.bits):
            raise ValueError(f"code {self.code} out of range for {self.bits} bits")

    def payload_bytes(self, sizes: DataSizes) -> int:
        return max(1, (self.bits + 7) // 8)


@dataclass(frozen=True)
class FilterStateMessage(Message):
    """Compression-based DPF: a parametric posterior summary forwarded between leaders.

    ``n_params`` scalar parameters (e.g. GMM means/covs/weights), each charged
    one weight-sized integer, matching Coates' "P bytes per message" model.
    """

    category: ClassVar[str] = "state_forward"

    sender: int
    iteration: int
    params: np.ndarray

    def __post_init__(self) -> None:
        params = np.atleast_1d(np.asarray(self.params, dtype=np.float64))
        if not np.isfinite(params).all():
            raise ValueError("filter-state params must be finite")
        object.__setattr__(self, "params", _as_readonly(params))

    @property
    def n_params(self) -> int:
        return self.params.shape[0]

    def payload_bytes(self, sizes: DataSizes) -> int:
        return self.n_params * sizes.weight


@dataclass(frozen=True)
class WakeupMessage(Message):
    """TDSS-style proactive wake-up beacon toward the predicted area."""

    category: ClassVar[str] = "control"

    sender: int
    iteration: int
    predicted_position: np.ndarray = field(default_factory=lambda: np.zeros(2))

    def __post_init__(self) -> None:
        object.__setattr__(self, "predicted_position", _as_readonly(self.predicted_position))

    def payload_bytes(self, sizes: DataSizes) -> int:
        return sizes.measurement * 2  # an (x, y) coordinate pair


@dataclass(frozen=True)
class EstimateReportMessage(Message):
    """Optional per-iteration estimate report toward the sink (not counted by default)."""

    category: ClassVar[str] = "report"

    sender: int
    iteration: int
    estimate: np.ndarray = field(default_factory=lambda: np.zeros(2))

    def __post_init__(self) -> None:
        object.__setattr__(self, "estimate", _as_readonly(self.estimate))

    def payload_bytes(self, sizes: DataSizes) -> int:
        return sizes.measurement * 2


# ---------------------------------------------------------------------------
# checkpoint codec: messages <-> plain state dicts
# ---------------------------------------------------------------------------

#: every concrete wire type, by class name — the checkpoint registry.  The
#: wire codec (``network.codec``) is lossy fixed-point and unusable here;
#: checkpoints must restore the exact float64 fields.
_MESSAGE_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        ParticleMessage,
        MeasurementMessage,
        WeightReportMessage,
        TotalWeightMessage,
        QueryMessage,
        AckMessage,
        QuantizedMeasurementMessage,
        FilterStateMessage,
        WakeupMessage,
        EstimateReportMessage,
    )
}


def message_to_state(message: Message) -> dict:
    """Lossless plain-state form of one message (class name + field values).

    Arrays stay numpy arrays; the checkpoint codec serializes them exactly.
    """
    name = type(message).__name__
    if name not in _MESSAGE_TYPES:
        raise TypeError(
            f"cannot checkpoint a {name}; register it in messages._MESSAGE_TYPES"
        )
    return {
        "type": name,
        "fields": {
            f.name: getattr(message, f.name)
            for f in dataclasses.fields(message)
        },
    }


def message_from_state(state: dict) -> Message:
    """Rebuild a message from :func:`message_to_state` output.

    Construction goes through the class's own ``__post_init__`` validation,
    so a corrupted checkpoint fails loudly instead of producing an invalid
    message.
    """
    cls = _MESSAGE_TYPES.get(state.get("type"))
    if cls is None:
        raise TypeError(
            f"unknown checkpointed message type {state.get('type')!r}"
        )
    return cls(**state["fields"])
