"""Lock-step batched sweep execution: many cells, one stacked phase at a time.

The process-pool engine parallelizes *across* cells but leaves each cell's
iteration as scalar Python orchestration around the SoA kernels.  This
backend flips the loop order: same-``(density, algorithm)`` cells advance
together, phase by phase, so the per-phase work of many cells executes as
one stacked array op (the cross-cell batch axis of ``repro.kernels``) and
the per-cell medium machinery — per-message inbox logging, per-broadcast
ledger rows, per-copy offered-set queries — collapses into aggregate
bookkeeping with identical observable totals.

Bit-identity contract (pinned by ``tests/experiments/test_lockstep.py``):

* every cell keeps its **own** tracker instance, RNG streams and holder
  state — only the *schedule* changes, never the data flow;
* every phase body is a transcription of the tracker's phase for the
  supported envelope, with the medium's message transport replaced by
  direct handoff: on a reliable medium every broadcast reaches exactly the
  in-range nodes (the medium's own ``d2 <= r^2`` membership test,
  replicated bitwise), the inbox round trip is a pure formality, and in
  ``velocity_mode="track"`` every recorded share carries the same
  consensus velocity, so the correction's per-broadcast recorder loop
  collapses into one grouped stable-sort combine with identical floats;
* RNG consumption is preserved draw for draw (``Generator.uniform(size=n)``
  produces the same stream as ``n`` scalar draws — pinned by a test);
* communication accounting records the same per-``(iteration, category,
  phase)`` totals as the per-message path; the ledger's dict views (the
  only consumers) cannot distinguish one aggregated row from ``n``
  per-message rows.

Cells whose tracker or scenario falls outside the supported envelope
(custom factories, unreliable media, consistency checking, localization
error, ...) are executed through the serial per-cell path instead — the
engine routes them before this module ever sees them, and a residual guard
here re-routes anything the factory check could not predict.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..core.propagation import HeldParticle
from ..factory import _NamedFactory
from ..kernels import (  # dispatching wrappers: honor backend switches
    batch_contributions,
    batch_likelihood,
)
from ..kernels.geometry import norm2d_many
from ..kernels.propagation import batch_propagate
from ..models.measurement import BearingMeasurement, wrap_angle
from ..network.messages import MeasurementMessage, ParticleMessage
from ..network.sensing import InstantDetection
from ..runtime import IterationState
from ..scenario import Scenario, StepContext, make_paper_scenario, make_trajectory
from .runner import generate_step_context, summarize_tracking_run

__all__ = ["partition_batchable", "run_lockstep"]

#: Default-config tracker families the lock-step handlers cover.
_BATCHABLE_FAMILIES = frozenset({"CDPF", "CDPF-NE"})


def partition_batchable(pending):
    """Split ``(index, spec)`` pairs into (lock-steppable, everything else).

    Only the registry's own default factories are batchable: a custom
    factory may configure the tracker arbitrarily, so it goes down the
    per-cell path the factory was written against.
    """
    batchable, rest = [], []
    for item in pending:
        factory = item[1].factory
        if isinstance(factory, _NamedFactory) and factory.name in _BATCHABLE_FAMILIES:
            batchable.append(item)
        else:
            rest.append(item)
    return batchable, rest


def _supported(tracker, scenario: Scenario) -> bool:
    """Residual guard: the exact envelope the phase handlers replicate."""
    from ..core.cdpf import CDPFTracker

    return (
        type(tracker) is CDPFTracker
        and tracker.anticipate_available is None
        and not tracker.check_consistency
        and not tracker.report_to_sink
        and not tracker.medium.is_unreliable
        and tracker.config.velocity_mode == "track"
        and not tracker.config.adaptive_area
        and scenario.physical is None
        and scenario.link_model is None
    )


# ---------------------------------------------------------------------------
# shared worlds: one scenario/trajectory/sensing pass per (density, seed)
# ---------------------------------------------------------------------------


@dataclass
class _World:
    """Everything algorithm-independent about one (density, seed) cell.

    The engine's streams key on ``(density, seed)`` only, so every
    algorithm at a cell sees the same deployment, trajectory and sensing
    noise; the lock-step backend computes them once and shares them across
    the algorithm groups (the serial path rebuilds them per cell)."""

    scenario: Scenario
    trajectory: object
    contexts: list[StepContext]


def _fast_contexts_supported(scenario: Scenario) -> bool:
    return (
        not scenario.detect_on_path
        and type(scenario.detection) is InstantDetection
        and type(scenario.measurement) is BearingMeasurement
    )


def _generate_contexts(scenario, trajectory, rng, n_iterations) -> list[StepContext]:
    """The whole run's sensing-layer outputs, consuming ``rng`` exactly as
    the per-iteration :func:`generate_step_context` calls would."""
    if not _fast_contexts_supported(scenario):
        return [
            generate_step_context(scenario, trajectory, k, rng)
            for k in range(n_iterations + 1)
        ]
    physical = scenario.physical_deployment
    index = physical.index
    positions = physical.positions
    measurement = scenario.measurement
    bias_std = scenario.measurement_bias_std
    contexts: list[StepContext] = []
    for k in range(n_iterations + 1):
        target_pos = trajectory.position_at_iteration(k)
        detectors = scenario.detection.detect(index, target_pos[None, :], rng)
        bias = rng.normal(0.0, bias_std) if bias_std else 0.0
        measurements: dict[int, float] = {}
        if detectors.size:
            # vectorized BearingMeasurement.measure: one arctan2/normal/wrap
            # pass over the detector set, draw-for-draw identical to the
            # scalar per-detector loop (Generator.normal(size=n) produces
            # the same stream as n scalar draws)
            if measurement.reference == "node":
                refs = positions[detectors]
            else:
                refs = np.zeros((detectors.size, 2))
            d = target_pos[None, :] - refs
            true_vals = np.arctan2(d[:, 1], d[:, 0])
            noises = rng.normal(0.0, measurement.noise_std, size=detectors.size)
            zs = wrap_angle(true_vals + noises) + bias
            measurements = {int(nid): zs[i] for i, nid in enumerate(detectors)}
        contexts.append(
            StepContext(iteration=k, detectors=detectors, measurements=measurements)
        )
    return contexts


def _build_world(spec) -> _World:
    from .engine import task_seed_sequences

    task = spec.task
    streams = task_seed_sequences(spec.base_seed, task.density, task.seed)
    world_rng = np.random.default_rng(streams["world"])
    scenario = make_paper_scenario(
        density_per_100m2=task.density, rng=world_rng, **spec.scenario_kwargs
    )
    trajectory = make_trajectory(
        n_iterations=spec.n_iterations, rng=world_rng, **spec.trajectory_kwargs
    )
    contexts = _generate_contexts(
        scenario, trajectory, np.random.default_rng(streams["sensing"]), spec.n_iterations
    )
    return _World(scenario=scenario, trajectory=trajectory, contexts=contexts)


# ---------------------------------------------------------------------------
# per-group lock-step execution
# ---------------------------------------------------------------------------


@dataclass
class _Cell:
    """One task's live state inside a lock-step group."""

    index: int
    spec: object
    world: _World
    tracker: object
    estimates: dict[int, np.ndarray] = field(default_factory=dict)
    detectors_per_iteration: list[int] = field(default_factory=list)


def _phase_propagation_batch(group: list[tuple[_Cell, IterationState]], k: int) -> None:
    for cell, state in group:
        if state.done:
            continue
        t0 = time.perf_counter()
        tracker = cell.tracker
        ctx = state.ctx
        with tracker.medium.phase("propagation"):
            state.detectors = set(int(d) for d in np.asarray(ctx.detectors).ravel())
            if not tracker.holders:
                tracker._initialize(ctx, state.detectors)
                state.finish(None)
            else:
                positions = tracker.scenario.deployment.positions
                # the (B, 4) sender-state matrix the reliable correction
                # would assemble by vstacking one ParticleMessage per
                # holder — same rows (position ++ velocity), same sorted
                # holder order, no message objects
                ids = sorted(tracker.holders)
                states = np.concatenate(
                    [
                        positions[ids],
                        np.array([tracker.holders[n].velocity for n in ids]),
                    ],
                    axis=1,
                )
                weights = np.array(
                    [tracker.holders[n].weight for n in ids], dtype=np.float64
                )
                state.broadcast = (states, weights)
                # one aggregated ledger row == n per-message rows in every
                # (iteration, category, phase) view.  Every live broadcast
                # is charged whether or not anyone is in range, exactly as
                # the reliable medium does; one-particle ParticleMessage
                # without a carried prediction.
                sizes = tracker.medium.sizes
                n_bytes = sizes.header + sizes.particle + sizes.weight
                tracker.medium.accounting.record(
                    k, ParticleMessage.category, n_bytes * len(ids), len(ids)
                )
        tracker.stats.record_phase("propagation", time.perf_counter() - t0)


def _correction_fast(tracker, state: IterationState, k: int) -> None:
    """Transcription of ``CDPFTracker._phase_correction`` for the supported
    envelope: reliable medium, everyone available, ``velocity_mode="track"``,
    no adaptive area, no consistency recording, no sink reports.

    Under those guards the per-broadcast recorder loop collapses: every
    recorded share carries the same consensus velocity, no copy is ever
    lost, and the per-recorder combine becomes a stable grouped pass over
    the concatenated ``(recorder, share)`` pairs — same share values, same
    per-group summation order, same sorted-recorder combine order as the
    scalar ``shares_at`` / ``combine_shares`` chain.
    """
    if getattr(state, "broadcast", None) is None:
        return  # nothing was propagated; the estimate stays unavailable
    states, weights = state.broadcast
    positions = tracker.scenario.deployment.positions
    index = tracker.scenario.deployment.index
    dt = tracker.scenario.dynamics.dt
    cfg = tracker.config

    # --- overheard aggregate (identical at every in-area node) --------
    total = float(weights.sum())
    w_eff = weights if total > 0 else np.full(weights.shape[0], 1.0 / weights.shape[0])
    total_eff = float(w_eff.sum())
    estimate = (w_eff @ states[:, :2]) / total_eff
    carried = (w_eff @ states[:, 2:]) / total_eff
    if tracker._estimate is not None and tracker._estimate_iter == k - 2:
        displacement = (estimate - tracker._estimate) / dt
        beta = cfg.velocity_alpha
        tracker._velocity_estimate = (1.0 - beta) * carried + beta * displacement
    else:
        tracker._velocity_estimate = carried
    tracker._estimate = estimate
    tracker._estimate_iter = k - 1

    # --- record + divide against the consensus predicted area ---------
    comm_radius = tracker.scenario.radio.comm_radius
    tracker._last_sender_positions = states[:, :2]
    consensus_pred = estimate + tracker._velocity_estimate * dt
    tracker._last_predictions = consensus_pred[None, :]
    cand = index.query_disk(consensus_pred, cfg.predicted_area_radius)
    if cand.size:
        cand_pos = positions[cand]
        sdx = cand_pos[None, :, 0] - states[:, 0:1]
        sdy = cand_pos[None, :, 1] - states[:, 1:2]
        keep_masks = np.sqrt(sdx * sdx + sdy * sdy) <= comm_radius
        selected = batch_propagate(
            np.broadcast_to(consensus_pred, (states.shape[0], 2)),
            w_eff,
            cand,
            cand_pos,
            area_radius=cfg.predicted_area_radius,
            record_threshold=cfg.record_threshold,
            max_recorders=cfg.max_recorders,
            keep_masks=keep_masks,
        )
    else:
        selected = []

    # --- combine shares per recorder (sorted ids, broadcast order) -----
    v_est = tracker._velocity_estimate
    rid_chunks = [cand[sel] for sel, _, _ in selected if sel.size]
    combined: dict[int, HeldParticle] = {}
    if rid_chunks:
        rids = np.concatenate(rid_chunks)
        shs = np.concatenate([sh for sel, _, sh in selected if sel.size])
        order = np.argsort(rids, kind="stable")
        rids_s = rids[order]
        shs_s = shs[order]
        bounds = np.flatnonzero(
            np.concatenate([[True], rids_s[1:] != rids_s[:-1], [True]])
        )
        for g in range(bounds.size - 1):
            w_g = shs_s[bounds[g] : bounds[g + 1]]
            total_g = float(w_g.sum())
            velocities = np.tile(v_est, (w_g.size, 1))
            if total_g > 0.0:
                velocity = (w_g / total_g) @ velocities
            else:  # pragma: no cover - shares are strictly positive
                velocity = velocities.mean(axis=0)
            combined[int(rids_s[bounds[g]])] = HeldParticle(
                velocity=velocity, weight=total_g
            )

    # --- drop rule + renormalize (nothing lost => shared denominator) --
    max_share = max((p.weight for p in combined.values()), default=0.0)
    threshold = cfg.drop_threshold * max_share
    new_holders: dict[int, HeldParticle] = {}
    dropped = 0
    for rid, particle in combined.items():
        if particle.weight < threshold:
            dropped += 1
            continue
        particle.weight = particle.weight / total_eff
        new_holders[rid] = particle
    tracker.holders = new_holders
    tracker.stats.dropped_per_iteration.append(dropped)
    state.estimate = estimate


def _phase_correction_batch(group: list[tuple[_Cell, IterationState]], k: int) -> None:
    for cell, state in group:
        if state.done:
            continue
        t0 = time.perf_counter()
        with cell.tracker.medium.phase("correction"):
            _correction_fast(cell.tracker, state, k)
        cell.tracker.stats.record_phase("correction", time.perf_counter() - t0)


def _create_new_particles_fast(tracker, detectors: set[int]) -> set[int]:
    """Vectorized transcription of ``CDPFTracker._create_new_particles``.

    The per-candidate hearing and slack tests become two (detectors,
    senders) matrix ops; the gate's RNG draws are taken as one
    ``uniform(size=n)`` batch consumed in the same sorted-candidate order
    as the scalar loop's per-candidate draws.
    """
    from ..core.propagation import HeldParticle

    positions = tracker.scenario.deployment.positions
    holders = tracker.holders
    if holders:
        base_weight = float(np.mean([p.weight for p in holders.values()]))
    else:
        base_weight = tracker.initial_weight
    sender_pos = tracker._last_sender_positions
    predictions = tracker._last_predictions
    comm_r2 = tracker.scenario.radio.comm_radius**2
    slack_r = tracker.config.creation_slack * tracker.config.predicted_area_radius
    area_ratio = (tracker.scenario.sensing_radius / tracker.scenario.radio.comm_radius) ** 2
    track_alive = bool(holders)
    v0 = np.asarray(tracker.scenario.prior_velocity, dtype=np.float64)
    created: set[int] = set()
    cand = [nid for nid in sorted(detectors) if nid not in holders]
    if not cand:
        return created
    if sender_pos is not None and sender_pos.size:
        cpos = positions[cand]
        d2 = np.sum((sender_pos[None, :, :] - cpos[:, None, :]) ** 2, axis=2)
        heard = d2 <= comm_r2
        heard_any = heard.any(axis=1)
        d_pred = np.sqrt(np.sum((predictions[None, :, :] - cpos[:, None, :]) ** 2, axis=2))
        within = d_pred <= slack_r
        if predictions.shape[0] == sender_pos.shape[0]:
            skip_slack = (within & heard).any(axis=1)
        else:
            skip_slack = within.any(axis=1)
        skip_slack &= heard_any
    else:
        heard_any = np.zeros(len(cand), dtype=bool)
        skip_slack = heard_any
    n_gate = int(np.count_nonzero(heard_any & ~skip_slack)) if track_alive else 0
    if n_gate:
        tracker.neighbors.warm_degrees(
            [nid for i, nid in enumerate(cand) if heard_any[i] and not skip_slack[i]]
        )
    draws = tracker.rng.uniform(size=n_gate) if n_gate else None
    di = 0
    estimate = tracker._estimate
    dt = tracker.scenario.dynamics.dt
    cfg = tracker.config
    for i, nid in enumerate(cand):
        if skip_slack[i]:
            continue
        if track_alive and heard_any[i]:
            n_codetectors = max(1.0, (tracker.neighbors.degree(nid) + 1) * area_ratio)
            u = draws[di]
            di += 1
            if u >= min(1.0, cfg.creation_limit / n_codetectors):
                continue
        if estimate is not None:
            velocity = (positions[nid] - estimate) / dt
        else:
            velocity = v0.copy()
        holders[nid] = HeldParticle(velocity=velocity, weight=base_weight)
        created.add(nid)
    return created


def _phase_creation_batch(group: list[tuple[_Cell, IterationState]], k: int) -> None:
    for cell, state in group:
        if state.done:
            continue
        t0 = time.perf_counter()
        with cell.tracker.medium.phase("creation"):
            state.created = _create_new_particles_fast(cell.tracker, state.detectors)
        cell.tracker.stats.record_phase("creation", time.perf_counter() - t0)


def _likelihood_prepare(tracker, state: IterationState, k: int):
    """Sharer accounting + per-holder (sender, value) pair gathering.

    Replaces the medium's broadcast/collect round trip with its own
    delivery rule: on a reliable medium a holder hears a sharer iff it is
    within comm radius and is not the sharer itself (the ``_offered``
    membership test, squared distances replicated bitwise).  Inbox order is
    the sharers' sorted broadcast order, exactly as the inbox log replays
    it.  Returns ``None`` when no holder has any information this round.
    """
    ctx = state.ctx
    detectors: set[int] = state.detectors
    positions = tracker.scenario.deployment.positions
    holders = tracker.holders
    sharers = sorted(nid for nid in holders if nid in detectors)
    if sharers:
        sizes = tracker.medium.sizes
        n_bytes = sizes.header + sizes.measurement
        tracker.medium.accounting.record(
            k, MeasurementMessage.category, n_bytes * len(sharers), len(sharers)
        )
    rows: list[int] = []
    pair_lists: list[list[tuple[int, float]]] = []
    receivers = [r for r in sorted(holders) if r not in state.created]
    if sharers and receivers:
        svals = [float(ctx.measurements[s]) for s in sharers]
        spos = positions[sharers]
        rpos = positions[receivers]
        dx = rpos[:, None, 0] - spos[None, :, 0]
        dy = rpos[:, None, 1] - spos[None, :, 1]
        radius = tracker.scenario.radio.comm_radius
        heard = dx * dx + dy * dy <= radius * radius
        heard &= np.asarray(receivers)[:, None] != np.asarray(sharers)[None, :]
    else:
        svals = []
        heard = None
    for i, r in enumerate(receivers):
        if heard is not None:
            pairs = [(sharers[j], svals[j]) for j in np.nonzero(heard[i])[0]]
        else:
            pairs = []
        if r in detectors:
            pairs = pairs + [(r, ctx.measurements[r])]
        if not pairs:
            continue
        rows.append(r)
        pair_lists.append(pairs)
    if not rows:
        return None
    col_of: dict[tuple[int, float], int] = {}
    for pairs in pair_lists:
        for pair in pairs:
            if pair not in col_of:
                col_of[pair] = len(col_of)
    measurement = tracker.scenario.measurement
    senders = [s for s, _ in col_of]
    if measurement.reference == "node":
        refs = positions[senders]
    else:
        refs = np.zeros((len(senders), 2))
    zs = np.array([z for _, z in col_of], dtype=np.float64)
    lam_denom = np.pi * tracker.scenario.radio.comm_radius**2
    tracker.neighbors.warm_degrees(rows)
    lam = np.array([(tracker.neighbors.degree(r) + 1) / lam_denom for r in rows])
    return rows, pair_lists, col_of, positions[rows], lam, refs, zs


def _phase_likelihood_batch(group: list[tuple[_Cell, IterationState]], k: int) -> None:
    active = [(cell, state) for cell, state in group if not state.done]
    if not active:
        return
    seconds = {id(cell): 0.0 for cell, _ in active}
    prepared = []
    for cell, state in active:
        t0 = time.perf_counter()
        with cell.tracker.medium.phase("likelihood"):
            data = _likelihood_prepare(cell.tracker, state, k)
        if data is None:
            state.log_liks = {}
        else:
            prepared.append((cell, state, data))
        seconds[id(cell)] += time.perf_counter() - t0
    if prepared:
        # the cross-cell batch axis: every cell's (holders, measurements)
        # log-kernel matrix in one stacked padded kernel call.  Elementwise
        # kernels are bitwise independent of batch shape, so each slice
        # equals the cell's own 2-D call; padded entries are never read.
        t0 = time.perf_counter()
        n_r = max(len(d[0]) for _, _, d in prepared)
        n_c = max(len(d[2]) for _, _, d in prepared)
        hp = np.zeros((len(prepared), n_r, 2))
        lam = np.ones((len(prepared), n_r))
        sp = np.zeros((len(prepared), n_c, 2))
        zsm = np.zeros((len(prepared), n_c))
        for b, (_, _, d) in enumerate(prepared):
            rows, _, col_of, hpos, lam_b, refs, zs = d
            hp[b, : len(rows)] = hpos
            lam[b, : len(rows)] = lam_b
            sp[b, : len(col_of)] = refs
            zsm[b, : len(col_of)] = zs
        noise_std = prepared[0][0].tracker.scenario.measurement.noise_std
        matrices = batch_likelihood(hp, lam, sp, zsm, noise_std)
        share = (time.perf_counter() - t0) / len(prepared)
        for b, (cell, state, d) in enumerate(prepared):
            t0 = time.perf_counter()
            rows, pair_lists, col_of, _, _, _, _ = d
            matrix = matrices[b]
            log_liks: dict[int, float] = {}
            for i, (r, pairs) in enumerate(zip(rows, pair_lists)):
                cols = [col_of[pair] for pair in pairs]
                log_liks[r] = float(matrix[i, cols].mean())
            state.log_liks = log_liks
            seconds[id(cell)] += share + (time.perf_counter() - t0)
    for cell, _ in active:
        cell.tracker.stats.record_phase("likelihood", seconds[id(cell)])


def _phase_assign_weight_batch(group: list[tuple[_Cell, IterationState]], k: int) -> None:
    active = [(cell, state) for cell, state in group if not state.done]
    if not active:
        return
    if not active[0][0].tracker.neighborhood_estimation:
        for cell, state in active:
            t0 = time.perf_counter()
            tracker = cell.tracker
            for r, log_lik in state.log_liks.items():
                particle = tracker.holders[r]
                particle.weight = particle.weight * float(np.exp(log_lik))
            tracker.stats.record_population(len(tracker.holders), len(state.created))
            tracker.stats.record_phase("assign_weight", time.perf_counter() - t0)
        return
    _assign_weights_ne_batch(active)


def _assign_weights_ne_batch(active: list[tuple[_Cell, IterationState]]) -> None:
    """Cross-cell batched ``_assign_weights_ne``: every cell's estimation
    areas concatenated into one CSR :func:`batch_contributions` call."""
    seconds = {id(cell): 0.0 for cell, _ in active}
    prepared = []
    for cell, state in active:
        t0 = time.perf_counter()
        tracker = cell.tracker
        if tracker._estimate is None or tracker._velocity_estimate is None:
            seconds[id(cell)] += time.perf_counter() - t0
            continue
        positions = tracker.scenario.deployment.positions
        dt = tracker.scenario.dynamics.dt
        r_s = tracker.scenario.sensing_radius
        r_c = tracker.scenario.radio.comm_radius
        predicted_now = tracker._estimate + tracker._velocity_estimate * dt
        holders = [r for r in sorted(tracker.holders) if r not in state.created]
        if holders:
            own_diff = positions[holders] - predicted_now
            d_own = norm2d_many(own_diff[:, 0], own_diff[:, 1])
            groups: list[tuple[int, np.ndarray]] = []
            members = None
            if 2.0 * r_s <= 0.999 * r_c:
                # paper's R_s <= R_c/2: any two nodes of one estimation
                # area are mutual one-hop neighbors, so every in-area
                # holder's `neighbors ∩ area` equals the area itself — one
                # disk query replaces the per-holder neighbor lists.  The
                # query radius is padded so the exact in-area expression
                # below (the tracker's own sqrt form) decides membership.
                cand = tracker.scenario.deployment.index.query_disk(
                    predicted_now, r_s * (1.0 + 1e-9)
                )
                cdiff = positions[cand] - predicted_now
                d_cand = np.sqrt(
                    cdiff[:, 0] * cdiff[:, 0] + cdiff[:, 1] * cdiff[:, 1]
                )
                inside = d_cand <= r_s
                m_ids, m_d = cand[inside], d_cand[inside]
                o = np.argsort(m_ids)
                members = (m_ids[o], m_d[o])
            else:  # pragma: no cover - paper geometry always satisfies it
                tracker.neighbors.warm(
                    [r for i, r in enumerate(holders) if d_own[i] <= r_s]
                )
            for i, r in enumerate(holders):
                particle = tracker.holders[r]
                if d_own[i] > r_s:
                    particle.weight = 0.0
                    continue
                if members is None:  # pragma: no cover - non-paper geometry
                    neigh = tracker.neighbors.neighbors(r)
                    groups.append((r, np.append(neigh, r)))
                    continue
                # group = sorted in-area neighbors of r, then r itself —
                # exactly the order `np.append(neighbors(r), r)` filtered
                # by the in-area mask would produce
                m_ids, m_d = members
                j = int(np.searchsorted(m_ids, r))
                if j < m_ids.size and m_ids[j] == r:
                    ids_g = np.concatenate([m_ids[:j], m_ids[j + 1 :], [r]])
                    vals_g = np.concatenate([m_d[:j], m_d[j + 1 :], [m_d[j]]])
                else:  # pragma: no cover - d_own and the area test disagree
                    ids_g, vals_g = m_ids, m_d
                groups.append((r, (ids_g, vals_g)))
            if groups and members is None:  # pragma: no cover
                flat_ids = np.concatenate([ids for _, ids in groups])
                diff = positions[flat_ids] - predicted_now
                d_flat = np.sqrt(diff[:, 0] * diff[:, 0] + diff[:, 1] * diff[:, 1])
                in_area = d_flat <= r_s
                offset = 0
                resolved = []
                for r, ids in groups:
                    sl = slice(offset, offset + ids.size)
                    offset += ids.size
                    mask = in_area[sl]
                    resolved.append((r, (ids[mask], d_flat[sl][mask])))
                groups = resolved
            if groups:
                prepared.append((cell, groups))
        seconds[id(cell)] += time.perf_counter() - t0
    if prepared:
        t0 = time.perf_counter()
        area_vals: list[np.ndarray] = []
        meta = []
        for cell, groups in prepared:
            for r, (ids_g, vals_g) in groups:
                area_vals.append(vals_g)
                meta.append((cell, r, ids_g))
        counts = np.array([v.size for v in area_vals], dtype=np.intp)
        offsets = np.concatenate([[0], np.cumsum(counts)])
        contributions = batch_contributions(np.concatenate(area_vals), offsets)
        share = (time.perf_counter() - t0) / len(prepared)
        t0 = time.perf_counter()
        for g, (cell, r, area_ids) in enumerate(meta):
            own_idx = int(np.nonzero(area_ids == r)[0][0])
            particle = cell.tracker.holders[r]
            particle.weight = particle.weight * float(
                contributions[offsets[g] + own_idx]
            )
        post = (time.perf_counter() - t0) / len(prepared)
        for cell, _ in prepared:
            seconds[id(cell)] += share + post
    for cell, state in active:
        tracker = cell.tracker
        t0 = time.perf_counter()
        tracker.stats.record_population(len(tracker.holders), len(state.created))
        tracker.stats.record_phase(
            "assign_weight", seconds[id(cell)] + (time.perf_counter() - t0)
        )


_HANDLERS = {
    "propagation": _phase_propagation_batch,
    "correction": _phase_correction_batch,
    "creation": _phase_creation_batch,
    "likelihood": _phase_likelihood_batch,
    "assign_weight": _phase_assign_weight_batch,
}


def _run_group(cells: list[_Cell], n_iterations: int) -> None:
    phase_names = [p.name for p in cells[0].tracker.phases]
    for k in range(n_iterations + 1):
        group = []
        for cell in cells:
            ctx = cell.world.contexts[k]
            cell.detectors_per_iteration.append(int(np.asarray(ctx.detectors).size))
            group.append((cell, IterationState(ctx)))
        for name in phase_names:
            _HANDLERS[name](group, k)
        for cell, state in group:
            est = state.estimate
            if est is None:
                continue
            ref = cell.tracker.estimate_iteration()
            if ref is None:
                raise RuntimeError(
                    f"{cell.tracker.name} returned an estimate without an "
                    "iteration reference"
                )
            if 0 <= ref <= n_iterations:
                cell.estimates[ref] = np.asarray(est, dtype=np.float64).copy()


def run_lockstep(batchable) -> Iterator[tuple[int, "object"]]:
    """Execute batchable ``(index, spec)`` pairs; yields ``(index, CellResult)``.

    Cells are grouped by ``(density, algorithm)`` and each group advances in
    lock-step; worlds (deployment, trajectory, sensing outputs) are built
    once per ``(density, seed)`` and shared across the algorithm groups.
    Results are yielded group by group, so an interrupt loses at most the
    group in flight (matching the serial path's at-most-one-cell guarantee
    per group rather than per cell).
    """
    from .engine import CellResult, _execute_task, task_seed_sequences

    if not batchable:
        return
    groups: dict[tuple[float, str], list] = {}
    for index, spec in batchable:
        groups.setdefault((spec.task.density, spec.task.algorithm), []).append(
            (index, spec)
        )
    world_refs: dict[tuple[float, int], int] = {}
    for _, spec in batchable:
        key = (spec.task.density, spec.task.seed)
        world_refs[key] = world_refs.get(key, 0) + 1
    worlds: dict[tuple[float, int], _World] = {}

    for items in groups.values():
        t0 = time.perf_counter()
        cells: list[_Cell] = []
        for index, spec in items:
            wkey = (spec.task.density, spec.task.seed)
            world = worlds.get(wkey)
            if world is None:
                world = _build_world(spec)
                worlds[wkey] = world
            streams = task_seed_sequences(spec.base_seed, spec.task.density, spec.task.seed)
            tracker = spec.factory(world.scenario, np.random.default_rng(streams["tracker"]))
            cells.append(_Cell(index=index, spec=spec, world=world, tracker=tracker))
        if not all(_supported(c.tracker, c.world.scenario) for c in cells):
            # the factory produced something outside the handlers' envelope:
            # run the whole group through the reference per-cell path
            for index, spec in items:
                yield index, _execute_task(spec)
                wkey = (spec.task.density, spec.task.seed)
                world_refs[wkey] -= 1
                if not world_refs[wkey]:
                    worlds.pop(wkey, None)
            continue
        _run_group(cells, cells[0].spec.n_iterations)
        elapsed = (time.perf_counter() - t0) / len(cells)
        for cell in cells:
            tracking = summarize_tracking_run(
                cell.tracker,
                cell.world.trajectory,
                cell.estimates,
                cell.detectors_per_iteration,
            )
            task = cell.spec.task
            yield cell.index, CellResult(
                density=task.density,
                algorithm=task.algorithm,
                seed=task.seed,
                rmse=tracking.rmse,
                total_bytes=int(tracking.total_bytes),
                total_messages=int(tracking.total_messages),
                coverage=tracking.error.coverage,
                elapsed_s=elapsed,
                tracking=tracking,
            )
            wkey = (task.density, task.seed)
            world_refs[wkey] -= 1
            if not world_refs[wkey]:
                worlds.pop(wkey, None)
