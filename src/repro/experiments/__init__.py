"""Experiment harness: runner, metrics, cost model, sweeps, figure generators."""

from .costmodel import CostModel, cdpf_cost, cdpf_ne_cost, cpf_cost, dpf_cost, sdpf_cost, table1_rows
from .engine import (
    RECORD_SCHEMA,
    CellResult,
    JsonlStore,
    RunSummary,
    StoreLoadError,
    SweepTask,
    expand_tasks,
    run_sweep,
    task_seed_sequences,
)
from .figures import (
    Figure4Data,
    figure4_estimation_example,
    figure5_communication_cost,
    figure6_estimation_error,
)
from .options import CheckpointPolicy, RunOptions, iteration_subscriber
from .report import format_number, render_ascii_chart, render_series, render_table
from .summary import HeadlineClaims, extract_headline_claims
from .trace import IterationSnapshot, TraceRecorder, render_field_map
from .sweep import SweepPoint, SweepResult, default_tracker_factories, density_sweep
from .metrics import ErrorSummary, cost_series, per_iteration_errors, rmse, summarize_errors
from .runner import (
    StepOutcome,
    TrackingResult,
    TrackingRun,
    generate_step_context,
    restore_tracking_run,
    run_tracking,
    snapshot_tracking_run,
)

__all__ = [
    "CostModel", "cdpf_cost", "cdpf_ne_cost", "cpf_cost", "dpf_cost", "sdpf_cost", "table1_rows",
    "CellResult", "JsonlStore", "RECORD_SCHEMA", "RunSummary", "StoreLoadError", "SweepTask", "expand_tasks", "run_sweep", "task_seed_sequences",
    "Figure4Data", "figure4_estimation_example", "figure5_communication_cost", "figure6_estimation_error",
    "CheckpointPolicy", "RunOptions", "iteration_subscriber",
    "format_number", "render_ascii_chart", "render_series", "render_table",
    "HeadlineClaims", "extract_headline_claims",
    "IterationSnapshot", "TraceRecorder", "render_field_map",
    "SweepPoint", "SweepResult", "default_tracker_factories", "density_sweep",
    "ErrorSummary", "cost_series", "per_iteration_errors", "rmse", "summarize_errors",
    "StepOutcome", "TrackingResult", "TrackingRun", "generate_step_context",
    "restore_tracking_run", "run_tracking", "snapshot_tracking_run",
]
