"""Plain-text rendering of tables and figure data (no plotting deps).

The benches print the same rows/series the paper reports; these helpers keep
the formatting in one place so every bench output looks consistent and is
trivially diffable across runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime import PhaseProfile

__all__ = [
    "render_table",
    "render_series",
    "render_ascii_chart",
    "render_phase_profile",
    "format_number",
]


def format_number(x, precision: int = 2) -> str:
    """Compact numeric formatting: ints as ints, floats rounded, NaN as '-'."""
    if x is None:
        return "-"
    if isinstance(x, str):
        return x
    xf = float(x)
    if np.isnan(xf):
        return "-"
    if float(xf).is_integer() and abs(xf) < 1e15:
        return str(int(xf))
    return f"{xf:.{precision}f}"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    title: str | None = None,
    precision: int = 2,
) -> str:
    """Monospace table with a header rule, sized to its widest cells."""
    str_rows = [[format_number(c, precision) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(str(h)), *(len(r[i]) for r in str_rows)) if str_rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    def fmt_row(cells):
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)


def render_phase_profile(
    profile: "PhaseProfile", *, title: str | None = None, precision: int = 4
) -> str:
    """One tracker's per-phase cost table (Table I, measured).

    Rows follow the tracker's declared phase order; a trailing ``(unscoped)``
    row appears only if traffic was charged outside any phase scope.
    """
    headers = ["phase", "calls", "seconds", "bytes", "messages", "dropped msgs"]
    return render_table(
        headers,
        profile.as_rows(),
        title=title if title is not None else f"{profile.tracker} phase profile",
        precision=precision,
    )


def render_ascii_chart(
    x_values: Sequence,
    series: dict[str, Sequence],
    *,
    height: int = 12,
    width: int = 64,
    title: str | None = None,
    log_y: bool = False,
) -> str:
    """Terminal line chart: one mark per curve, linear or log y-axis.

    Good enough to see orderings and trends in a captured bench log; the
    exact numbers live in the accompanying :func:`render_series` table.
    """
    if height < 2 or width < 8:
        raise ValueError("chart too small")
    names = list(series)
    marks = "*o+x#@%&"
    data = {n: np.asarray(series[n], dtype=np.float64) for n in names}
    for n in names:
        if data[n].shape[0] != len(x_values):
            raise ValueError(f"series {n!r} length differs from x values")
    all_vals = np.concatenate([v[np.isfinite(v)] for v in data.values()])
    if all_vals.size == 0:
        raise ValueError("no finite data to chart")
    if log_y:
        all_vals = all_vals[all_vals > 0]
        if all_vals.size == 0:
            raise ValueError("log chart needs positive data")
        lo, hi = np.log10(all_vals.min()), np.log10(all_vals.max())
    else:
        lo, hi = float(all_vals.min()), float(all_vals.max())
    if hi == lo:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    n_x = len(x_values)
    for si, n in enumerate(names):
        mark = marks[si % len(marks)]
        for i, v in enumerate(data[n]):
            if not np.isfinite(v) or (log_y and v <= 0):
                continue
            y = np.log10(v) if log_y else v
            col = int(i / max(n_x - 1, 1) * (width - 1))
            row = height - 1 - int(round((y - lo) / (hi - lo) * (height - 1)))
            grid[row][col] = mark

    top = 10**hi if log_y else hi
    bottom = 10**lo if log_y else lo
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{format_number(top):>10} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{format_number(bottom):>10} +" + "-" * width)
    lines.append(
        " " * 12
        + f"x: {format_number(x_values[0])} .. {format_number(x_values[-1])}"
        + ("   (log y)" if log_y else "")
    )
    lines.append(
        " " * 12
        + "legend: "
        + "  ".join(f"{marks[i % len(marks)]}={n}" for i, n in enumerate(names))
    )
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence,
    series: dict[str, Sequence],
    *,
    title: str | None = None,
    precision: int = 2,
) -> str:
    """A figure's data as a table: one x column, one column per curve."""
    names = list(series)
    for name in names:
        if len(series[name]) != len(x_values):
            raise ValueError(f"series {name!r} length differs from x values")
    rows = [
        [x, *(series[name][i] for name in names)] for i, x in enumerate(x_values)
    ]
    return render_table([x_label, *names], rows, title=title, precision=precision)
