"""Parameter sweeps: the engine behind Figures 5 and 6.

The paper's protocol (§VI-A): for each node density in 5..40 nodes/100 m^2,
run each of the four algorithms on the same deployments/trajectories for ten
random seeds and report the averages.  :func:`density_sweep` reproduces that
protocol; per-(density, algorithm) aggregates come back as a
:class:`SweepResult` that the figure benches render.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..baselines.cpf import CPFTracker
from ..baselines.sdpf import SDPFTracker
from ..core.cdpf import CDPFTracker
from ..scenario import Scenario, make_paper_scenario, make_trajectory
from .runner import TrackingResult, run_tracking

__all__ = ["SweepPoint", "SweepResult", "density_sweep", "default_tracker_factories"]

TrackerFactory = Callable[[Scenario, np.random.Generator], object]


def default_tracker_factories() -> dict[str, TrackerFactory]:
    """The paper's four algorithms, in Figure 5/6 legend order."""
    return {
        "CPF": lambda s, rng: CPFTracker(s, rng=rng),
        "SDPF": lambda s, rng: SDPFTracker(s, rng=rng),
        "CDPF": lambda s, rng: CDPFTracker(s, rng=rng),
        "CDPF-NE": lambda s, rng: CDPFTracker(s, rng=rng, neighborhood_estimation=True),
    }


@dataclass
class SweepPoint:
    """Aggregates for one (density, algorithm) cell."""

    density: float
    algorithm: str
    rmse_runs: list[float] = field(default_factory=list)
    bytes_runs: list[int] = field(default_factory=list)
    messages_runs: list[int] = field(default_factory=list)
    coverage_runs: list[float] = field(default_factory=list)

    @property
    def rmse(self) -> float:
        vals = [v for v in self.rmse_runs if np.isfinite(v)]
        return float(np.mean(vals)) if vals else float("nan")

    @property
    def rmse_std(self) -> float:
        vals = [v for v in self.rmse_runs if np.isfinite(v)]
        return float(np.std(vals)) if vals else float("nan")

    @property
    def total_bytes(self) -> float:
        return float(np.mean(self.bytes_runs)) if self.bytes_runs else float("nan")

    @property
    def total_messages(self) -> float:
        return float(np.mean(self.messages_runs)) if self.messages_runs else float("nan")

    @property
    def coverage(self) -> float:
        return float(np.mean(self.coverage_runs)) if self.coverage_runs else float("nan")


@dataclass
class SweepResult:
    """All (density, algorithm) cells of one sweep."""

    densities: list[float]
    algorithms: list[str]
    points: dict[tuple[float, str], SweepPoint]

    def series(self, algorithm: str, metric: str) -> np.ndarray:
        """One algorithm's metric across densities (Figure 5/6's curves)."""
        return np.array(
            [getattr(self.points[(d, algorithm)], metric) for d in self.densities]
        )

    def reduction_vs(self, algorithm: str, baseline: str, metric: str = "total_bytes") -> np.ndarray:
        """Fractional reduction of ``algorithm`` relative to ``baseline`` per density."""
        a = self.series(algorithm, metric)
        b = self.series(baseline, metric)
        return 1.0 - a / b


def density_sweep(
    densities: Sequence[float] = (5, 10, 15, 20, 25, 30, 35, 40),
    *,
    n_seeds: int = 10,
    n_iterations: int = 10,
    factories: dict[str, TrackerFactory] | None = None,
    base_seed: int = 2011,
    scenario_kwargs: dict | None = None,
    trajectory_kwargs: dict | None = None,
    on_result: Callable[[float, str, int, TrackingResult], None] | None = None,
) -> SweepResult:
    """The Figure 5/6 protocol: densities x algorithms x seeds.

    Every algorithm at a given (density, seed) sees the *same* deployment and
    trajectory — paired comparisons, matching the paper's "variable random
    seeds" averaging while eliminating cross-algorithm deployment variance.
    Pass ``scenario_kwargs`` / ``trajectory_kwargs`` jointly when changing
    the field geometry: the default trajectory enters at (0, 100).
    """
    if factories is None:
        factories = default_tracker_factories()
    scenario_kwargs = scenario_kwargs or {}
    trajectory_kwargs = trajectory_kwargs or {}
    points: dict[tuple[float, str], SweepPoint] = {
        (float(d), name): SweepPoint(float(d), name)
        for d in densities
        for name in factories
    }
    for d in densities:
        for seed in range(n_seeds):
            world_rng = np.random.default_rng(base_seed + 1000 * seed + int(d))
            scenario = make_paper_scenario(density_per_100m2=float(d), rng=world_rng, **scenario_kwargs)
            trajectory = make_trajectory(
                n_iterations=n_iterations, rng=world_rng, **trajectory_kwargs
            )
            for name, make in factories.items():
                tracker = make(scenario, np.random.default_rng(base_seed + seed))
                sense_rng = np.random.default_rng(base_seed + 7000 + seed)
                result = run_tracking(tracker, scenario, trajectory, rng=sense_rng)
                pt = points[(float(d), name)]
                pt.rmse_runs.append(result.rmse)
                pt.bytes_runs.append(result.total_bytes)
                pt.messages_runs.append(result.total_messages)
                pt.coverage_runs.append(result.error.coverage)
                if on_result is not None:
                    on_result(float(d), name, seed, result)
    return SweepResult(
        densities=[float(d) for d in densities],
        algorithms=list(factories),
        points=points,
    )
