"""Parameter sweeps: the engine behind Figures 5 and 6.

The paper's protocol (§VI-A): for each node density in 5..40 nodes/100 m^2,
run each of the four algorithms on the same deployments/trajectories for ten
random seeds and report the averages.  :func:`density_sweep` reproduces that
protocol on top of :mod:`repro.experiments.engine` — a task list of
``(density, algorithm, seed)`` cells with collision-free SeedSequence
streams, optionally executed process-parallel (``max_workers``) and/or
persisted to a resumable JSONL ``store``.  Per-(density, algorithm)
aggregates come back as a :class:`SweepResult` that the figure benches
render.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from ..factory import tracker_factory
from ..scenario import Scenario
from .engine import JsonlStore, RunSummary, expand_tasks, run_sweep
from .runner import TrackingResult

__all__ = ["SweepPoint", "SweepResult", "density_sweep", "default_tracker_factories"]

TrackerFactory = Callable[[Scenario, np.random.Generator], object]


def default_tracker_factories() -> dict[str, TrackerFactory]:
    """The paper's four algorithms, in Figure 5/6 legend order.

    Built from the :mod:`repro.factory` registry; each entry is picklable,
    so the default sweep fans out into the engine's worker processes.
    """
    return {
        name: tracker_factory(name) for name in ("CPF", "SDPF", "CDPF", "CDPF-NE")
    }


@dataclass
class SweepPoint:
    """Aggregates for one (density, algorithm) cell."""

    density: float
    algorithm: str
    rmse_runs: list[float] = field(default_factory=list)
    bytes_runs: list[int] = field(default_factory=list)
    messages_runs: list[int] = field(default_factory=list)
    coverage_runs: list[float] = field(default_factory=list)

    @property
    def rmse(self) -> float:
        vals = [v for v in self.rmse_runs if np.isfinite(v)]
        return float(np.mean(vals)) if vals else float("nan")

    @property
    def rmse_std(self) -> float:
        vals = [v for v in self.rmse_runs if np.isfinite(v)]
        return float(np.std(vals)) if vals else float("nan")

    @property
    def total_bytes(self) -> float:
        return float(np.mean(self.bytes_runs)) if self.bytes_runs else float("nan")

    @property
    def total_messages(self) -> float:
        return float(np.mean(self.messages_runs)) if self.messages_runs else float("nan")

    @property
    def coverage(self) -> float:
        return float(np.mean(self.coverage_runs)) if self.coverage_runs else float("nan")


@dataclass
class SweepResult:
    """All (density, algorithm) cells of one sweep."""

    densities: list[float]
    algorithms: list[str]
    points: dict[tuple[float, str], SweepPoint]
    #: Timing/throughput of the execution that produced this sweep
    #: (``None`` for hand-built results).
    run_summary: RunSummary | None = None

    def series(self, algorithm: str, metric: str) -> np.ndarray:
        """One algorithm's metric across densities (Figure 5/6's curves)."""
        return np.array(
            [getattr(self.points[(d, algorithm)], metric) for d in self.densities]
        )

    def reduction_vs(self, algorithm: str, baseline: str, metric: str = "total_bytes") -> np.ndarray:
        """Fractional reduction of ``algorithm`` relative to ``baseline`` per density."""
        a = self.series(algorithm, metric)
        b = self.series(baseline, metric)
        return 1.0 - a / b


def density_sweep(
    densities: Sequence[float] = (5, 10, 15, 20, 25, 30, 35, 40),
    *,
    n_seeds: int = 10,
    n_iterations: int = 10,
    factories: dict[str, TrackerFactory] | None = None,
    base_seed: int = 2011,
    scenario_kwargs: dict | None = None,
    trajectory_kwargs: dict | None = None,
    on_result: Callable[[float, str, int, TrackingResult | None], None] | None = None,
    max_workers: int = 1,
    store: JsonlStore | str | Path | None = None,
    backend: str | None = None,
    checkpoint_every: int | None = None,
    kernel_backend: str | None = None,
) -> SweepResult:
    """The Figure 5/6 protocol: densities x algorithms x seeds.

    Every algorithm at a given (density, seed) sees the *same* deployment,
    trajectory and sensing noise — paired comparisons, matching the paper's
    "variable random seeds" averaging while eliminating cross-algorithm
    deployment variance.  Streams are SeedSequence-spawned per cell (see
    :mod:`repro.experiments.engine`), so no two cells share randomness.
    Pass ``scenario_kwargs`` / ``trajectory_kwargs`` jointly when changing
    the field geometry: the default trajectory enters at (0, 100).

    ``max_workers > 1`` fans the cells out over a process pool and is
    bit-identical to the serial run (``max_workers=1``, the default).
    ``backend="batched"`` advances batchable cells in lock-step with
    cross-cell stacked kernels (also bit-identical; see
    :func:`repro.experiments.engine.run_sweep`).
    ``store`` names a JSONL file persisting completed cells: an interrupted
    sweep rerun with the same store resumes, skipping finished cells.
    ``checkpoint_every`` additionally streams mid-cell checkpoints into the
    store every ``n`` iterations, so the in-flight cell itself resumes from
    its last checkpoint instead of restarting (requires ``store``; see
    :func:`repro.experiments.engine.run_sweep`).

    ``on_result`` is called once per cell in deterministic task order after
    the sweep body; for cells resumed from a store, the ``TrackingResult``
    argument is ``None`` (only scalar metrics are persisted).
    """
    if factories is None:
        factories = default_tracker_factories()
    tasks = expand_tasks(densities, list(factories), n_seeds)
    cells, summary = run_sweep(
        tasks,
        factories=factories,
        base_seed=base_seed,
        n_iterations=n_iterations,
        scenario_kwargs=scenario_kwargs,
        trajectory_kwargs=trajectory_kwargs,
        max_workers=max_workers,
        store=store,
        backend=backend,
        checkpoint_every=checkpoint_every,
        kernel_backend=kernel_backend,
    )
    points: dict[tuple[float, str], SweepPoint] = {
        (float(d), name): SweepPoint(float(d), name)
        for d in densities
        for name in factories
    }
    for cell in cells:  # task order: density -> seed -> algorithm
        pt = points[(cell.density, cell.algorithm)]
        pt.rmse_runs.append(cell.rmse)
        pt.bytes_runs.append(cell.total_bytes)
        pt.messages_runs.append(cell.total_messages)
        pt.coverage_runs.append(cell.coverage)
        if on_result is not None:
            on_result(cell.density, cell.algorithm, cell.seed, cell.tracking)
    return SweepResult(
        densities=[float(d) for d in densities],
        algorithms=list(factories),
        points=points,
        run_summary=summary,
    )
