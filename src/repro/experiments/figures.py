"""Data generators for the paper's figures.

Each function regenerates one figure's underlying data series:

* :func:`figure4_estimation_example` — one run at 20 nodes/100 m^2: the real
  trajectory plus the CDPF and CDPF-NE estimated tracks.
* :func:`figure5_communication_cost` — total communication bytes vs node
  density for CPF/SDPF/CDPF/CDPF-NE.
* :func:`figure6_estimation_error` — RMSE vs node density for the same four.

The functions return plain data (arrays/dicts); the benches render them with
:mod:`repro.experiments.report`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.cdpf import CDPFTracker
from ..runtime import PhaseProfile
from ..scenario import make_paper_scenario, make_trajectory
from .runner import run_tracking
from .sweep import SweepResult, default_tracker_factories, density_sweep

__all__ = [
    "Figure4Data",
    "figure4_estimation_example",
    "figure5_communication_cost",
    "figure6_estimation_error",
    "phase_profile_data",
]

PAPER_DENSITIES = (5, 10, 15, 20, 25, 30, 35, 40)


@dataclass
class Figure4Data:
    """The estimation-example tracks (paper Fig. 4)."""

    truth: np.ndarray  # (K + 1, 2) true positions at filter instants
    cdpf: dict[int, np.ndarray]  # iteration -> estimate
    cdpf_ne: dict[int, np.ndarray]
    cdpf_rmse: float
    cdpf_ne_rmse: float

    def max_error(self, which: str = "cdpf_ne") -> float:
        """Largest per-iteration error of one track (paper: 'up to 3 m')."""
        estimates = getattr(self, which)
        if not estimates:
            return float("nan")
        return max(
            float(np.linalg.norm(est - self.truth[k])) for k, est in estimates.items()
        )


def figure4_estimation_example(
    *,
    density: float = 20.0,
    n_iterations: int = 10,
    seed: int = 2011,
) -> Figure4Data:
    """One run at the paper's Fig. 4 density with both CDPF variants."""
    world_rng = np.random.default_rng(seed)
    scenario = make_paper_scenario(density_per_100m2=density, rng=world_rng)
    trajectory = make_trajectory(n_iterations=n_iterations, rng=world_rng)

    results = {}
    for name, ne in (("cdpf", False), ("cdpf_ne", True)):
        tracker = CDPFTracker(
            scenario, rng=np.random.default_rng(seed + 1), neighborhood_estimation=ne
        )
        results[name] = run_tracking(
            tracker, scenario, trajectory, rng=np.random.default_rng(seed + 2)
        )
    return Figure4Data(
        truth=trajectory.iteration_positions(),
        cdpf=results["cdpf"].estimates,
        cdpf_ne=results["cdpf_ne"].estimates,
        cdpf_rmse=results["cdpf"].rmse,
        cdpf_ne_rmse=results["cdpf_ne"].rmse,
    )


def figure5_communication_cost(
    *,
    densities=PAPER_DENSITIES,
    n_seeds: int = 10,
    n_iterations: int = 10,
    max_workers: int = 1,
    store=None,
) -> SweepResult:
    """Communication cost vs density (paper Fig. 5's data).

    ``max_workers`` / ``store`` pass through to the sweep engine: parallel
    execution is bit-identical to serial, and a store makes the sweep
    resumable across interruptions.
    """
    return density_sweep(
        densities,
        n_seeds=n_seeds,
        n_iterations=n_iterations,
        max_workers=max_workers,
        store=store,
    )


def figure6_estimation_error(
    *,
    densities=PAPER_DENSITIES,
    n_seeds: int = 10,
    n_iterations: int = 10,
    sweep: SweepResult | None = None,
    max_workers: int = 1,
    store=None,
) -> SweepResult:
    """RMSE vs density (paper Fig. 6's data).

    Figures 5 and 6 come from the same runs, so pass the Figure 5 sweep via
    ``sweep`` to avoid recomputing it.
    """
    if sweep is not None:
        return sweep
    return density_sweep(
        densities,
        n_seeds=n_seeds,
        n_iterations=n_iterations,
        max_workers=max_workers,
        store=store,
    )


def phase_profile_data(
    *,
    density: float = 10.0,
    n_iterations: int = 10,
    seed: int = 2011,
    trackers: dict | None = None,
) -> dict[str, PhaseProfile]:
    """Per-phase cost profiles for the paper's four algorithms (Table I, measured).

    Runs each tracker once at ``density`` on the same world/trajectory seed
    and reads its :class:`~repro.runtime.profile.PhaseProfile` off the run;
    the phase bench serializes these to ``BENCH_phases.json``.
    """
    factories = trackers if trackers is not None else default_tracker_factories()
    profiles: dict[str, PhaseProfile] = {}
    for name, factory in factories.items():
        world_rng = np.random.default_rng(seed)
        scenario = make_paper_scenario(density_per_100m2=density, rng=world_rng)
        trajectory = make_trajectory(n_iterations=n_iterations, rng=world_rng)
        tracker = factory(scenario, np.random.default_rng(seed + 1))
        result = run_tracking(
            tracker, scenario, trajectory, rng=np.random.default_rng(seed + 2)
        )
        if result.phase_profile is None:
            raise RuntimeError(f"{name} did not produce a phase profile")
        profiles[name] = result.phase_profile
    return profiles
