"""Table I: analyzed communication costs of the four particle filters.

The paper's §II-B derives per-iteration communication costs:

    CPF      N * D_m * H          (convergecast of raw measurements)
    DPF      N * P * H            (convergecast of compressed measurements)
    SDPF     N_s (D_p + D_m + 2 D_w)  [+ 2 transceiver broadcasts]
    CDPF     N_s (D_p + D_m + D_w)
    CDPF-NE  N_s (D_p + D_w)      (§V-C: only particle propagation remains)

This module expresses those formulas as code, so the benchmarks can print
Table I and — more importantly — cross-check the simulator's measured ledger
against the analysis (the SDPF/CDPF/CDPF-NE terms match exactly; CPF matches
once the measured hop distribution is plugged in for H).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..network.messages import DataSizes

__all__ = [
    "CostModel",
    "cpf_cost",
    "dpf_cost",
    "sdpf_cost",
    "cdpf_cost",
    "cdpf_ne_cost",
    "table1_rows",
]


def cpf_cost(n_detectors: int, hops: float, sizes: DataSizes) -> float:
    """CPF per-iteration cost: N * D_m * H (H = mean hops to the sink)."""
    _check(n_detectors, hops)
    return n_detectors * sizes.measurement * hops


def dpf_cost(n_detectors: int, hops: float, compressed_bytes: float, sizes: DataSizes) -> float:
    """Compression-based DPF: N * P * H, with P the compressed message size."""
    _check(n_detectors, hops)
    if compressed_bytes < 0:
        raise ValueError("compressed_bytes must be non-negative")
    return n_detectors * compressed_bytes * hops


def sdpf_cost(n_particles: int, sizes: DataSizes, *, include_handshake: bool = True) -> float:
    """SDPF per-iteration cost: N_s (D_p + D_m + 2 D_w) [+ 2 broadcasts].

    The paper's derivation: propagation N_s (D_p + D_w), measurement sharing
    bounded by N_s D_m, aggregation N_s D_w plus the transceiver's two
    broadcast messages (query + total), each one weight-sized.
    """
    _check(n_particles, 1.0)
    base = n_particles * (sizes.particle + sizes.measurement + 2 * sizes.weight)
    if include_handshake:
        base += 2 * (sizes.header + sizes.weight)
    return base


def cdpf_cost(n_particles: int, sizes: DataSizes) -> float:
    """CDPF per-iteration cost: N_s (D_p + D_m + D_w) — no weight aggregation."""
    _check(n_particles, 1.0)
    return n_particles * (sizes.particle + sizes.measurement + sizes.weight)


def cdpf_ne_cost(n_particles: int, sizes: DataSizes) -> float:
    """CDPF-NE per-iteration cost: N_s (D_p + D_w) — propagation only."""
    _check(n_particles, 1.0)
    return n_particles * (sizes.particle + sizes.weight)


def _check(count: int, hops: float) -> None:
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if hops < 0:
        raise ValueError(f"hops must be non-negative, got {hops}")


@dataclass(frozen=True)
class CostModel:
    """Table I evaluated for a concrete configuration.

    Parameters mirror the symbols of §II-B: ``n_detectors`` is N (nodes with
    measurements), ``n_particles`` is N_s (network-wide maintained
    particles), ``hops`` is the convergecast hop count H, and
    ``compressed_bytes`` is DPF's P.
    """

    sizes: DataSizes
    n_detectors: int
    n_particles: int
    hops: float
    compressed_bytes: float = 1.0

    def cpf(self) -> float:
        return cpf_cost(self.n_detectors, self.hops, self.sizes)

    def dpf(self) -> float:
        return dpf_cost(self.n_detectors, self.hops, self.compressed_bytes, self.sizes)

    def sdpf(self) -> float:
        return sdpf_cost(self.n_particles, self.sizes)

    def cdpf(self) -> float:
        return cdpf_cost(self.n_particles, self.sizes)

    def cdpf_ne(self) -> float:
        return cdpf_ne_cost(self.n_particles, self.sizes)

    def as_dict(self) -> dict[str, float]:
        return {
            "CPF": self.cpf(),
            "DPF": self.dpf(),
            "SDPF": self.sdpf(),
            "CDPF": self.cdpf(),
            "CDPF-NE": self.cdpf_ne(),
        }


def table1_rows(sizes: DataSizes | None = None) -> list[tuple[str, str]]:
    """The symbolic Table I, row for row (method, cost formula)."""
    return [
        ("CPF", "N * Dm * Hmax"),
        ("DPF", "N * P * Hmax"),
        ("SDPF", "Ns * (Dp + Dm + 2*Dw)"),
        ("CDPF", "Ns * (Dp + Dm + Dw)"),
        ("CDPF-NE", "Ns * (Dp + Dw)"),
    ]
