"""Run tracing and ASCII field maps.

:class:`TraceRecorder` subscribes to the run's
:class:`~repro.runtime.events.EventBus` (or hooks into
:func:`~repro.experiments.runner.run_tracking` via the legacy
``on_iteration`` callable) and snapshots what the tracker saw and did each
iteration — detector sets, holder populations, estimates, and per-phase
timing/traffic events.  The snapshots drive :func:`render_field_map`, a
terminal rendering of one instant of the run (nodes, detectors, holders,
truth, estimate), which is how the examples and postmortems show *where* a
tracker's particles actually live.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..models.trajectory import Trajectory
from ..runtime import EventBus, IterationEvent, PhaseEvent
from ..scenario import Scenario, StepContext

__all__ = ["IterationSnapshot", "TraceRecorder", "render_field_map"]


@dataclass(frozen=True)
class IterationSnapshot:
    """Everything observable about one tracking iteration."""

    iteration: int
    detectors: np.ndarray
    holders: np.ndarray  # node ids holding particles AFTER the step ([] for CPF-like)
    estimate: np.ndarray | None
    estimate_iteration: int | None
    truth: np.ndarray


@dataclass
class TraceRecorder:
    """Collects :class:`IterationSnapshot`s (and phase events) during a run.

    Event-bus usage (preferred)::

        recorder = TraceRecorder(tracker, trajectory)
        bus = EventBus()
        recorder.attach(bus)
        run_tracking(tracker, scenario, trajectory, rng=rng,
                     options=RunOptions(bus=bus))
        print(render_field_map(scenario, recorder.snapshots[3]))
        recorder.phase_events        # every completed phase, in order

    The recorder also remains a plain callable for the legacy
    ``RunOptions(on_iteration=recorder)`` hook (no phase events on that
    path).
    """

    tracker: object
    trajectory: Trajectory
    snapshots: list[IterationSnapshot] = field(default_factory=list)
    phase_events: list[PhaseEvent] = field(default_factory=list)

    def attach(self, bus: EventBus) -> "TraceRecorder":
        """Subscribe to ``bus``; returns self for chaining."""
        bus.subscribe(self.handle)
        return self

    def handle(self, event) -> None:
        """Bus handler: snapshots on IterationEvent, collects ended phases."""
        if isinstance(event, IterationEvent):
            self(event.iteration, event.context, event.estimate)
        elif isinstance(event, PhaseEvent) and event.kind == "end":
            self.phase_events.append(event)

    def phase_seconds(self) -> dict[str, float]:
        """Total recorded wall-clock per phase name."""
        out: dict[str, float] = {}
        for ev in self.phase_events:
            out[ev.phase] = out.get(ev.phase, 0.0) + ev.seconds
        return out

    def __call__(self, k: int, ctx: StepContext, estimate) -> None:
        holders = getattr(self.tracker, "holders", None)
        holder_ids = (
            np.array(sorted(holders), dtype=np.intp)
            if isinstance(holders, dict)
            else np.zeros(0, dtype=np.intp)
        )
        est_iter = self.tracker.estimate_iteration() if estimate is not None else None
        self.snapshots.append(
            IterationSnapshot(
                iteration=k,
                detectors=np.array(sorted(int(d) for d in np.asarray(ctx.detectors).ravel())),
                holders=holder_ids,
                estimate=None if estimate is None else np.asarray(estimate, dtype=np.float64).copy(),
                estimate_iteration=est_iter,
                truth=self.trajectory.position_at_iteration(k).copy(),
            )
        )

    def holder_history(self) -> list[int]:
        return [s.holders.size for s in self.snapshots]

    def error_history(self) -> dict[int, float]:
        """Error of each estimate against the iteration it refers to."""
        out: dict[int, float] = {}
        for s in self.snapshots:
            if s.estimate is None or s.estimate_iteration is None:
                continue
            ref_truth = self.trajectory.position_at_iteration(s.estimate_iteration)
            out[s.estimate_iteration] = float(np.linalg.norm(s.estimate - ref_truth))
        return out


def render_field_map(
    scenario: Scenario,
    snapshot: IterationSnapshot,
    *,
    width_chars: int = 72,
    window: float | None = 60.0,
) -> str:
    """ASCII map of one iteration: ``.`` nodes, ``d`` detectors, ``o`` holders,
    ``T`` the true target, ``E`` the estimate.

    ``window`` crops the view to a square of that size centered on the truth
    (None shows the whole field).  Later marks overwrite earlier ones, in
    the priority order node < detector < holder < estimate < truth.
    """
    if width_chars < 16:
        raise ValueError("width_chars must be >= 16")
    pos = scenario.deployment.positions
    if window is None:
        x0, y0 = 0.0, 0.0
        x1, y1 = scenario.deployment.width, scenario.deployment.height
    else:
        cx, cy = snapshot.truth
        half = window / 2.0
        x0, x1 = cx - half, cx + half
        y0, y1 = cy - half, cy + half
    aspect = 0.5  # terminal cells are ~2x taller than wide
    height_chars = max(int(width_chars * (y1 - y0) / (x1 - x0) * aspect), 4)
    grid = [[" "] * width_chars for _ in range(height_chars)]

    def place(xy, mark):
        x, y = float(xy[0]), float(xy[1])
        if not (x0 <= x <= x1 and y0 <= y <= y1):
            return
        col = int((x - x0) / (x1 - x0) * (width_chars - 1))
        row = height_chars - 1 - int((y - y0) / (y1 - y0) * (height_chars - 1))
        grid[row][col] = mark

    in_view = (
        (pos[:, 0] >= x0) & (pos[:, 0] <= x1) & (pos[:, 1] >= y0) & (pos[:, 1] <= y1)
    )
    view_ids = np.nonzero(in_view)[0]
    # subsample background nodes so the map stays legible at high density
    max_bg = width_chars * height_chars // 8
    if view_ids.size > max_bg:
        view_ids = view_ids[:: int(np.ceil(view_ids.size / max_bg))]
    for nid in view_ids:
        place(pos[nid], ".")
    for nid in snapshot.detectors:
        place(pos[int(nid)], "d")
    for nid in snapshot.holders:
        place(pos[int(nid)], "o")
    if snapshot.estimate is not None:
        place(snapshot.estimate, "E")
    place(snapshot.truth, "T")

    border = "+" + "-" * width_chars + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in grid)
    legend = (
        f"iteration {snapshot.iteration}: . node  d detector  o holder  "
        f"T truth  E estimate (for k={snapshot.estimate_iteration})"
    )
    return "\n".join([legend, border, body, border])
