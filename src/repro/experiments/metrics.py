"""Tracking metrics: estimation error and communication cost series.

The paper's two evaluation criteria (§VI): root mean squared error of the
position estimates, and communication cost in bytes.  We additionally track
message counts, per-iteration series, and coverage (the fraction of
iterations for which the tracker produced an estimate) — a tracker that loses
the target would otherwise show a deceptively low RMSE over the few
iterations it survived.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..network.medium import CommAccounting

__all__ = ["rmse", "per_iteration_errors", "ErrorSummary", "summarize_errors", "cost_series"]


def per_iteration_errors(
    estimates: dict[int, np.ndarray], truth: np.ndarray
) -> dict[int, float]:
    """Euclidean position error per iteration for which an estimate exists.

    ``truth`` is the ``(K + 1, 2)`` array of true positions at filter
    instants 0..K; ``estimates`` maps iteration index -> (2,) estimate.
    """
    errors: dict[int, float] = {}
    for k, est in estimates.items():
        if not 0 <= k < truth.shape[0]:
            raise ValueError(f"estimate for iteration {k} outside truth range")
        errors[k] = float(np.linalg.norm(np.asarray(est, dtype=np.float64) - truth[k]))
    return errors


def rmse(estimates: dict[int, np.ndarray], truth: np.ndarray) -> float:
    """Root mean squared position error over the estimated iterations."""
    errors = per_iteration_errors(estimates, truth)
    if not errors:
        return float("nan")
    e = np.array(list(errors.values()))
    return float(np.sqrt(np.mean(e * e)))


@dataclass(frozen=True)
class ErrorSummary:
    """RMSE plus the context needed to compare trackers fairly."""

    rmse: float
    mean_error: float
    max_error: float
    n_estimates: int
    n_iterations: int

    @property
    def coverage(self) -> float:
        """Fraction of iterations the tracker produced an estimate for."""
        return self.n_estimates / self.n_iterations if self.n_iterations else 0.0


def summarize_errors(
    estimates: dict[int, np.ndarray], truth: np.ndarray, n_iterations: int
) -> ErrorSummary:
    errors = per_iteration_errors(estimates, truth)
    if errors:
        e = np.array(list(errors.values()))
        return ErrorSummary(
            rmse=float(np.sqrt(np.mean(e * e))),
            mean_error=float(e.mean()),
            max_error=float(e.max()),
            n_estimates=len(errors),
            n_iterations=n_iterations,
        )
    return ErrorSummary(
        rmse=float("nan"),
        mean_error=float("nan"),
        max_error=float("nan"),
        n_estimates=0,
        n_iterations=n_iterations,
    )


def cost_series(accounting: CommAccounting, n_iterations: int) -> dict[str, np.ndarray]:
    """Dense per-iteration byte and message series from a ledger."""
    b = accounting.bytes_by_iteration()
    m = accounting.messages_by_iteration()
    bytes_arr = np.zeros(n_iterations + 1, dtype=np.int64)
    msgs_arr = np.zeros(n_iterations + 1, dtype=np.int64)
    for k, v in b.items():
        if 0 <= k <= n_iterations:
            bytes_arr[k] = v
    for k, v in m.items():
        if 0 <= k <= n_iterations:
            msgs_arr[k] = v
    return {"bytes": bytes_arr, "messages": msgs_arr}
