"""Headline-claim extraction (§VI / §VIII of the paper).

Turns a density sweep into the paper's summary numbers:

* "CDPF reduces the communication cost [of SDPF] by 90%" — the maximum (over
  densities) byte reduction of CDPF relative to SDPF;
* "with about 50% of the tracking error increment as the cost" — the mean
  relative RMSE increase of CDPF over SDPF;
* "compared with CPF, they can also reduce the communication by about 70%";
* CDPF-NE's error increment over SDPF ("about 100% to 30%", shrinking with
  density) and its status as the minimum-cost option.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .sweep import SweepResult

__all__ = ["HeadlineClaims", "extract_headline_claims"]


@dataclass(frozen=True)
class HeadlineClaims:
    """The paper's summary statistics, measured on our runs."""

    cdpf_vs_sdpf_cost_reduction_max: float  # paper: ~0.90
    cdpf_vs_sdpf_cost_reduction_mean: float
    cdpf_vs_cpf_cost_reduction_mean: float  # paper: ~0.70
    cdpf_ne_vs_sdpf_cost_reduction_mean: float  # paper: "minimal" cost
    cdpf_vs_sdpf_error_increase_mean: float  # paper: ~0.50
    cdpf_ne_vs_sdpf_error_increase_low_density: float  # paper: ~1.00
    cdpf_ne_vs_sdpf_error_increase_high_density: float  # paper: ~0.30
    sdpf_cost_above_cpf: bool  # paper's "counterintuitive observation"
    orderings_hold: bool  # SDPF > CPF > CDPF >= CDPF-NE in bytes at each density

    def as_rows(self) -> list[tuple[str, str, str]]:
        """(claim, paper value, measured value) rows for the bench report."""
        pct = lambda x: f"{100 * x:.0f}%"
        return [
            ("CDPF cost reduction vs SDPF (max)", "~90%", pct(self.cdpf_vs_sdpf_cost_reduction_max)),
            ("CDPF cost reduction vs SDPF (mean)", "-", pct(self.cdpf_vs_sdpf_cost_reduction_mean)),
            ("CDPF cost reduction vs CPF (mean)", "~70%", pct(self.cdpf_vs_cpf_cost_reduction_mean)),
            ("CDPF-NE cost reduction vs SDPF (mean)", "minimal cost", pct(self.cdpf_ne_vs_sdpf_cost_reduction_mean)),
            ("CDPF error increase vs SDPF (mean)", "~50%", pct(self.cdpf_vs_sdpf_error_increase_mean)),
            ("CDPF-NE error increase vs SDPF (low density)", "~100%", pct(self.cdpf_ne_vs_sdpf_error_increase_low_density)),
            ("CDPF-NE error increase vs SDPF (high density)", "~30%", pct(self.cdpf_ne_vs_sdpf_error_increase_high_density)),
            ("SDPF costs more than CPF at this scale", "yes", "yes" if self.sdpf_cost_above_cpf else "no"),
            ("cost ordering SDPF > CPF > CDPF >= CDPF-NE", "yes", "yes" if self.orderings_hold else "no"),
        ]


def extract_headline_claims(sweep: SweepResult) -> HeadlineClaims:
    """Compute the headline statistics from a standard 4-algorithm sweep."""
    for required in ("CPF", "SDPF", "CDPF", "CDPF-NE"):
        if required not in sweep.algorithms:
            raise ValueError(f"sweep is missing algorithm {required!r}")

    cpf_b = sweep.series("CPF", "total_bytes")
    sdpf_b = sweep.series("SDPF", "total_bytes")
    cdpf_b = sweep.series("CDPF", "total_bytes")
    ne_b = sweep.series("CDPF-NE", "total_bytes")

    cpf_e = sweep.series("CPF", "rmse")
    sdpf_e = sweep.series("SDPF", "rmse")
    cdpf_e = sweep.series("CDPF", "rmse")
    ne_e = sweep.series("CDPF-NE", "rmse")

    red_sdpf = 1.0 - cdpf_b / sdpf_b
    red_cpf = 1.0 - cdpf_b / cpf_b
    red_ne = 1.0 - ne_b / sdpf_b
    err_inc = cdpf_e / sdpf_e - 1.0
    ne_inc = ne_e / sdpf_e - 1.0

    # the CDPF >= CDPF-NE leg gets slack at the sparsest densities, where the
    # two differ by a handful of messages and seed noise dominates (their
    # analytic costs differ only by the Ns*Dm measurement-sharing term)
    densities = np.asarray(sweep.densities)
    ne_slack = np.where(densities >= 10.0, 1.05, 1.5)
    orderings = bool(
        np.all(sdpf_b > cpf_b)
        and np.all(cpf_b > cdpf_b)
        and np.all(ne_b <= cdpf_b * ne_slack)
    )
    return HeadlineClaims(
        cdpf_vs_sdpf_cost_reduction_max=float(red_sdpf.max()),
        cdpf_vs_sdpf_cost_reduction_mean=float(red_sdpf.mean()),
        cdpf_vs_cpf_cost_reduction_mean=float(red_cpf.mean()),
        cdpf_ne_vs_sdpf_cost_reduction_mean=float(red_ne.mean()),
        cdpf_vs_sdpf_error_increase_mean=float(np.nanmean(err_inc)),
        cdpf_ne_vs_sdpf_error_increase_low_density=float(ne_inc[0]),
        cdpf_ne_vs_sdpf_error_increase_high_density=float(ne_inc[-1]),
        sdpf_cost_above_cpf=bool(np.all(sdpf_b > cpf_b)),
        orderings_hold=orderings,
    )
