"""Process-parallel Monte-Carlo execution engine for parameter sweeps.

The paper's evaluation protocol (§VI, Figures 5-6) is a Monte-Carlo grid:
densities x algorithms x seeds.  This module turns such a grid into an
explicit list of :class:`SweepTask` cells and executes them with three
guarantees the old serial triple loop could not give:

**Collision-free seeding.**  Every task derives its world / tracker / sensing
random streams from ``np.random.SeedSequence`` spawn keys — the documented
mechanism behind ``SeedSequence.spawn()`` — keyed on ``(stream id, density,
seed)``.  The old additive scheme (``base_seed + seed``, ``base_seed +
1000*seed + d``, ``base_seed + 7000 + seed``) collided for realistic grids
(tracker seed ``2011 + 5`` equals world seed ``2011 + 1000*0 + 5``),
silently correlating streams across cells; spawn keys cannot collide by
construction.  Streams depend only on ``(density, seed)``, never on the
algorithm, so every algorithm at a cell sees the same deployment, trajectory
and sensing noise — the paper's paired-comparison protocol.

**Serial == parallel, bit for bit.**  Each task is a pure function of its
spec, so fanning tasks out over a :class:`~concurrent.futures.
ProcessPoolExecutor` produces exactly the cells the serial loop produces,
in the same deterministic order (results are reassembled by task index, not
completion order).

**Resumability.**  With a ``store`` (a :class:`JsonlStore` or a path), every
completed cell is appended to a JSONL file as soon as it finishes; a rerun
of the same sweep loads the store first and only executes the missing cells.
Records carry a fingerprint of the sweep configuration so a store is never
reused across incompatible sweeps, and a truncated final line (the typical
signature of an interrupt) is tolerated on load.
"""

from __future__ import annotations

import hashlib
import json
import math
import pickle
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from .runner import TrackingResult

__all__ = [
    "SweepTask",
    "CellResult",
    "RunSummary",
    "JsonlStore",
    "StoreLoadError",
    "RECORD_SCHEMA",
    "task_seed_sequences",
    "expand_tasks",
    "run_sweep",
]

#: Version of the persisted cell-record payload.  A stored record whose
#: fingerprint matches but whose schema is *older* than this is treated as
#: absent (the cell re-runs under the current codec); a *newer* schema is an
#: error — the store was written by a newer version of this code.
RECORD_SCHEMA = 2

#: Stream identifiers: the first spawn-key component keeps the three
#: per-cell streams (deployment+trajectory, tracker internals, sensing
#: noise) in disjoint key spaces.
WORLD_STREAM, TRACKER_STREAM, SENSING_STREAM = 0, 1, 2


def _density_key(density: float) -> int:
    """Integer spawn-key component for a (possibly fractional) density.

    Keys on the float64 bit pattern, so *every* distinct density value gets a
    distinct spawn key.  The old ``int(round(density * 1e6))`` quantization
    mapped densities closer than 5e-7 to the same key, silently correlating
    cells that a fine-grained sweep intended to be independent.  The uint64
    view is non-negative, as SeedSequence spawn-key components require.
    """
    return int(np.float64(density).view(np.uint64))


def task_seed_sequences(
    base_seed: int, density: float, seed: int
) -> dict[str, np.random.SeedSequence]:
    """The three independent streams of one ``(density, seed)`` cell.

    Keyed on ``(stream id, density, seed)`` only — deliberately not on the
    algorithm — so all algorithms at a cell share the same world and sensing
    randomness (paired comparisons).  Distinct key tuples give statistically
    independent streams by SeedSequence's construction; no additive-seed
    collisions are possible.
    """
    dk = _density_key(density)
    return {
        "world": np.random.SeedSequence(base_seed, spawn_key=(WORLD_STREAM, dk, seed)),
        "tracker": np.random.SeedSequence(base_seed, spawn_key=(TRACKER_STREAM, dk, seed)),
        "sensing": np.random.SeedSequence(base_seed, spawn_key=(SENSING_STREAM, dk, seed)),
    }


@dataclass(frozen=True)
class SweepTask:
    """One Monte-Carlo cell: an algorithm run at a (density, seed) world."""

    density: float
    algorithm: str
    seed: int

    @property
    def key(self) -> tuple[float, str, int]:
        return (self.density, self.algorithm, self.seed)


def expand_tasks(
    densities: Sequence[float],
    algorithms: Sequence[str],
    n_seeds: int,
) -> list[SweepTask]:
    """The full grid in deterministic order: density -> seed -> algorithm.

    The order matches the historical serial triple loop, so per-point run
    lists come back seed-ordered regardless of execution strategy.
    """
    return [
        SweepTask(float(d), str(name), int(seed))
        for d in densities
        for seed in range(n_seeds)
        for name in algorithms
    ]


@dataclass
class CellResult:
    """What one executed (or resumed) cell produced.

    ``tracking`` carries the full :class:`~repro.experiments.runner.
    TrackingResult` for freshly executed cells and is ``None`` for cells
    loaded from a store (only the scalar metrics are persisted).
    """

    density: float
    algorithm: str
    seed: int
    rmse: float
    total_bytes: int
    total_messages: int
    coverage: float
    elapsed_s: float
    resumed: bool = False
    tracking: "TrackingResult | None" = None

    @property
    def key(self) -> tuple[float, str, int]:
        return (self.density, self.algorithm, self.seed)

    def to_record(self, fingerprint: str) -> dict:
        return {
            "fingerprint": fingerprint,
            "schema": RECORD_SCHEMA,
            "density": self.density,
            "algorithm": self.algorithm,
            "seed": self.seed,
            "rmse": self.rmse,
            "total_bytes": self.total_bytes,
            "total_messages": self.total_messages,
            "coverage": self.coverage,
            "elapsed_s": self.elapsed_s,
        }

    @classmethod
    def from_record(cls, record: dict) -> "CellResult":
        return cls(
            density=float(record["density"]),
            algorithm=str(record["algorithm"]),
            seed=int(record["seed"]),
            rmse=float(record["rmse"]),
            total_bytes=int(record["total_bytes"]),
            total_messages=int(record["total_messages"]),
            coverage=float(record["coverage"]),
            elapsed_s=float(record["elapsed_s"]),
            resumed=True,
        )


@dataclass(frozen=True)
class RunSummary:
    """Timing and throughput of one sweep execution."""

    n_tasks: int
    n_executed: int
    n_resumed: int
    max_workers: int
    wall_clock_s: float
    task_time_s: float  # summed per-task compute time across workers
    #: executed cells that restarted from a mid-cell store checkpoint rather
    #: than iteration 0.  They count toward ``n_executed`` (work ran), but
    #: their ``elapsed_s`` covers only the post-resume iterations — a store
    #: holding *only* ``kind:"checkpoint"`` records (a sweep killed before
    #: its first cell completed) resumes as ``n_resumed == 0`` with this
    #: field carrying the evidence, instead of looking like a fresh sweep.
    n_checkpoint_resumed: int = 0
    #: resolved per-kernel backend map of the sweep, as sorted
    #: ``(kernel, backend)`` pairs (see :func:`repro.kernels.backends.
    #: kernel_backend_info`) — records what actually served the hot paths,
    #: including per-kernel fallbacks to numpy
    kernel_backends: tuple[tuple[str, str], ...] = ()

    @property
    def tasks_per_sec(self) -> float:
        """Executed-task throughput (resumed cells cost nothing)."""
        return self.n_executed / self.wall_clock_s if self.wall_clock_s > 0 else 0.0

    @property
    def effective_workers(self) -> int:
        """Workers that could actually have been busy: a pool of 8 running 3
        executed tasks can never use more than 3 of its slots."""
        return min(self.max_workers, self.n_executed)

    @property
    def parallel_efficiency(self) -> float:
        """Summed task time over (wall clock x *effective* workers).

        1.0 = perfect scaling over the workers that had work to do.  A fully
        resumed sweep executes nothing, so its efficiency is undefined and
        reported as ``nan`` — not the misleading near-zero the raw
        ``max_workers`` denominator used to produce.  Cells resumed from
        mid-cell checkpoints (``n_checkpoint_resumed``) count as executed
        with only their post-resume compute in ``task_time_s``, so a
        checkpoint-only store yields a well-defined (post-resume)
        efficiency rather than ``nan`` or a skewed full-run figure.
        """
        if self.n_executed == 0:
            return float("nan")
        denom = self.wall_clock_s * self.effective_workers
        return self.task_time_s / denom if denom > 0 else float("nan")

    def as_rows(self) -> list[tuple[str, str]]:
        efficiency = self.parallel_efficiency
        return [
            ("tasks (total / executed / resumed)",
             f"{self.n_tasks} / {self.n_executed} / {self.n_resumed}"),
            ("mid-cell checkpoint resumes", str(self.n_checkpoint_resumed)),
            ("workers", str(self.max_workers)),
            ("wall clock", f"{self.wall_clock_s:.2f} s"),
            ("summed task time", f"{self.task_time_s:.2f} s"),
            ("throughput", f"{self.tasks_per_sec:.2f} tasks/s"),
            ("parallel efficiency",
             "n/a" if math.isnan(efficiency) else f"{efficiency:.2f}"),
            ("kernel backends", self.kernel_backend_summary),
        ]

    @property
    def kernel_backend_summary(self) -> str:
        """Human-readable per-kernel backend map (``"numpy"`` when uniform)."""
        if not self.kernel_backends:
            return "numpy"
        names = {backend for _, backend in self.kernel_backends}
        if len(names) == 1:
            return next(iter(names))
        return ", ".join(f"{k}={b}" for k, b in self.kernel_backends)


class StoreLoadError(RuntimeError):
    """A resume store is corrupt or belongs to a different sweep entirely."""


class JsonlStore:
    """Append-only JSONL persistence for completed sweep cells.

    One JSON object per line.  Loading tolerates exactly one failure mode: a
    truncated *final* line, the on-disk signature of an interrupted append.
    Anything else that would previously have been skipped in silence now
    fails loudly — an undecodable or malformed line in the middle of the
    file means corruption (resuming would quietly recompute and re-append
    those cells forever), and a store whose every record carries a foreign
    fingerprint means the file belongs to a different sweep configuration
    (resuming "from an empty set" is never what the caller intended).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def load(self, fingerprint: str) -> dict[tuple[float, str, int], CellResult]:
        """All stored cells matching ``fingerprint``, keyed by cell.

        Raises :class:`StoreLoadError` on a corrupt store (undecodable or
        malformed non-final line) and when a non-empty store contains *no*
        record of this sweep; warns when foreign-fingerprint records are
        merely mixed in alongside matching ones.
        """
        cells: dict[tuple[float, str, int], CellResult] = {}
        if not self.path.exists():
            return cells
        raw = self.path.read_text(encoding="utf-8").splitlines()
        lines = [(i, line.strip()) for i, line in enumerate(raw) if line.strip()]
        n_foreign = 0
        n_checkpoints = 0  # matching-fingerprint mid-cell checkpoints
        for pos, (lineno, line) in enumerate(lines):
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if pos == len(lines) - 1:
                    continue  # truncated tail from an interrupted append
                raise StoreLoadError(
                    f"{self.path}:{lineno + 1}: undecodable JSON in the middle "
                    f"of the store ({exc.msg}); this is corruption, not an "
                    "interrupted append — refusing to resume from it"
                ) from exc
            if not isinstance(record, dict):
                raise StoreLoadError(
                    f"{self.path}:{lineno + 1}: expected one JSON object per "
                    f"line, got {type(record).__name__}"
                )
            if record.get("fingerprint") != fingerprint:
                n_foreign += 1
                continue
            if record.get("kind") == "checkpoint":
                # mid-cell checkpoints are not completed cells, but they ARE
                # proof this store belongs to this sweep (a sweep killed
                # before its first cell completed leaves nothing else behind).
                # They are deliberately counted before the schema gate:
                # load_checkpoints() skips non-current-schema checkpoints on
                # its own, and a newer-schema checkpoint must not brick the
                # result load.
                n_checkpoints += 1
                continue
            schema = int(record.get("schema", 1))
            if schema > RECORD_SCHEMA:
                raise StoreLoadError(
                    f"{self.path}:{lineno + 1}: record schema {schema} is newer "
                    f"than this code's schema {RECORD_SCHEMA}; refusing to "
                    "guess at its layout"
                )
            if schema < RECORD_SCHEMA:
                # written by an older codec: the payload layout predates the
                # current one, so the cell is treated as absent and re-runs
                # (NOT an error — mixed-vintage stores are a normal upgrade
                # artifact, and re-running is always safe)
                continue
            try:
                cell = CellResult.from_record(record)
            except (KeyError, TypeError, ValueError) as exc:
                raise StoreLoadError(
                    f"{self.path}:{lineno + 1}: record matches this sweep's "
                    f"fingerprint but cannot be read back: {exc!r}"
                ) from exc
            cells[cell.key] = cell
        if n_foreign:
            if not cells and not n_checkpoints:
                raise StoreLoadError(
                    f"{self.path}: all {n_foreign} stored record(s) carry a "
                    "different sweep fingerprint — this store belongs to "
                    "another sweep configuration.  Resuming would silently "
                    "recompute every cell into the same file; pass a fresh "
                    "store path (or delete the file) if that is intended."
                )
            warnings.warn(
                f"{self.path}: ignoring {n_foreign} record(s) with a foreign "
                f"sweep fingerprint ({len(cells)} result record(s) and "
                f"{n_checkpoints} checkpoint(s) match this sweep)",
                stacklevel=2,
            )
        return cells

    def load_checkpoints(self, fingerprint: str) -> dict[tuple[float, str, int], "RunCheckpoint"]:
        """The latest readable mid-cell checkpoint per cell for this sweep.

        Checkpoint records ride the same JSONL file as completed cells
        (``kind == "checkpoint"``); the last one appended per cell wins.  A
        checkpoint that fails its integrity check is skipped — re-running the
        cell from scratch is always safe, so checkpoint corruption is never
        fatal the way result corruption is.
        """
        from ..runtime.checkpoint import CheckpointError, RunCheckpoint

        checkpoints: dict[tuple[float, str, int], RunCheckpoint] = {}
        if not self.path.exists():
            return checkpoints
        raw = self.path.read_text(encoding="utf-8").splitlines()
        lines = [line.strip() for line in raw if line.strip()]
        for pos, line in enumerate(lines):
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if pos == len(lines) - 1:
                    continue  # truncated tail from an interrupted append
                raise  # load() reports this corruption with full context
            if not isinstance(record, dict) or record.get("kind") != "checkpoint":
                continue
            if record.get("fingerprint") != fingerprint:
                continue
            if int(record.get("schema", 1)) != RECORD_SCHEMA:
                continue
            key = (
                float(record["density"]),
                str(record["algorithm"]),
                int(record["seed"]),
            )
            try:
                checkpoints[key] = RunCheckpoint.from_dict(record["checkpoint"])
            except (CheckpointError, KeyError, TypeError, ValueError):
                continue
        return checkpoints

    def append(self, record: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record) + "\n")
            handle.flush()


def checkpoint_record(fingerprint: str, task: SweepTask, checkpoint) -> dict:
    """The JSONL record shape of one mid-cell checkpoint."""
    return {
        "fingerprint": fingerprint,
        "schema": RECORD_SCHEMA,
        "kind": "checkpoint",
        "density": task.density,
        "algorithm": task.algorithm,
        "seed": task.seed,
        "checkpoint": checkpoint.to_dict(),
    }


def _canonical_value(value, path: str):
    """JSON-stable canonical form of one sweep kwarg.

    Numpy scalars collapse to their Python equivalents and arrays/tuples to
    lists, so ``width=np.float64(80)`` and ``width=80.0`` fingerprint
    identically from any session.  Values with no canonical form are
    rejected outright: the old ``json.dumps(..., default=repr)`` fallback
    turned them into id-bearing reprs like ``<object at 0x7f...>`` that
    changed every process, silently invalidating resume stores.
    """
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, np.generic):
        return _canonical_value(value.item(), path)
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, np.ndarray):
        return _canonical_value(value.tolist(), path)
    if isinstance(value, (list, tuple)):
        return [
            _canonical_value(v, f"{path}[{i}]") for i, v in enumerate(value)
        ]
    if isinstance(value, dict):
        for key in value:
            if not isinstance(key, str):
                raise TypeError(
                    f"sweep kwarg {path} has a non-string key {key!r}; "
                    "fingerprintable kwargs need string keys"
                )
        return {k: _canonical_value(v, f"{path}.{k}") for k, v in value.items()}
    raise TypeError(
        f"sweep kwarg {path} is a {type(value).__name__} ({value!r}), which "
        "has no stable fingerprint; pass plain scalars, sequences or dicts"
    )


def sweep_fingerprint(
    base_seed: int,
    n_iterations: int,
    scenario_kwargs: dict,
    trajectory_kwargs: dict,
) -> str:
    """Short stable hash of everything that changes a cell's result.

    Values are canonicalized (see :func:`_canonical_value`) before hashing,
    so the fingerprint is identical across sessions and processes; kwargs
    that cannot be canonicalized raise ``TypeError`` instead of being
    silently fingerprinted by their per-process ``repr``.
    """
    blob = json.dumps(
        {
            "base_seed": int(base_seed),
            "n_iterations": int(n_iterations),
            "scenario_kwargs": _canonical_value(scenario_kwargs, "scenario_kwargs"),
            "trajectory_kwargs": _canonical_value(
                trajectory_kwargs, "trajectory_kwargs"
            ),
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class _TaskSpec:
    """Everything a worker process needs to execute one cell."""

    task: SweepTask
    base_seed: int
    n_iterations: int
    factory: Callable
    scenario_kwargs: dict
    trajectory_kwargs: dict
    kernel_backend: str | None = None


def _pool_initializer(kernel_backend: str | None) -> None:
    """Per-worker setup: apply the sweep's backend request, pre-compile.

    Runs once per pool process at spawn.  The request enters through the
    same run-scoped channel as the serial path (so a process-level
    ``REPRO_KERNEL_BACKEND`` pin keeps its precedence, warn-once), and the
    scope deliberately never exits — it covers the worker's lifetime.
    Warm-up compiles any JIT variants up front so the first task doesn't
    pay compilation latency.
    """
    from ..kernels import backends

    if kernel_backend is not None:
        backends.use_kernel_backend(kernel_backend).__enter__()
    backends.warm_up_kernels()


def _execute_task(
    spec: _TaskSpec,
    checkpoint_every: int | None = None,
    checkpoint_sink: Callable | None = None,
    resume_from=None,
) -> CellResult:
    """Run one cell: build the world from its streams, track, summarize.

    Module-level so it pickles into worker processes; a pure function of
    the spec, which is what makes serial and parallel execution identical.
    The checkpoint parameters default to off so every existing positional
    call site (including the lock-step backend's fallback) is unchanged;
    ``resume_from`` transplants a :class:`~repro.runtime.checkpoint.
    RunCheckpoint` into the freshly built world — the world construction
    itself always runs, because restore-in-place needs the configuration-
    identical object graph to transplant into.
    """
    from ..scenario import make_paper_scenario, make_trajectory
    from .options import CheckpointPolicy, RunOptions
    from .runner import run_tracking

    t0 = time.perf_counter()
    task = spec.task
    streams = task_seed_sequences(spec.base_seed, task.density, task.seed)
    world_rng = np.random.default_rng(streams["world"])
    scenario = make_paper_scenario(
        density_per_100m2=task.density, rng=world_rng, **spec.scenario_kwargs
    )
    trajectory = make_trajectory(
        n_iterations=spec.n_iterations, rng=world_rng, **spec.trajectory_kwargs
    )
    tracker = spec.factory(scenario, np.random.default_rng(streams["tracker"]))
    checkpoint = None
    if checkpoint_every is not None or resume_from is not None:
        checkpoint = CheckpointPolicy(
            every=checkpoint_every,
            sink=checkpoint_sink,
            resume_from=resume_from,
        )
    if checkpoint is not None or spec.kernel_backend is not None:
        options = RunOptions(
            checkpoint=checkpoint, kernel_backend=spec.kernel_backend
        )
    else:
        options = None
    result = run_tracking(
        tracker,
        scenario,
        trajectory,
        rng=np.random.default_rng(streams["sensing"]),
        options=options,
    )
    return CellResult(
        density=task.density,
        algorithm=task.algorithm,
        seed=task.seed,
        rmse=result.rmse,
        total_bytes=int(result.total_bytes),
        total_messages=int(result.total_messages),
        coverage=result.error.coverage,
        elapsed_s=time.perf_counter() - t0,
        tracking=result,
    )


def run_sweep(
    tasks: Sequence[SweepTask],
    *,
    factories: dict[str, Callable],
    base_seed: int = 2011,
    n_iterations: int = 10,
    scenario_kwargs: dict | None = None,
    trajectory_kwargs: dict | None = None,
    max_workers: int = 1,
    store: JsonlStore | str | Path | None = None,
    backend: str | None = None,
    checkpoint_every: int | None = None,
    kernel_backend: str | None = None,
) -> tuple[list[CellResult], RunSummary]:
    """Execute a task list and return its cells in task order, plus timing.

    ``max_workers=1`` runs in-process (no pickling requirements on the
    factories); ``max_workers>1`` fans out over a process pool, which
    requires picklable factories (module-level functions — the default
    factories qualify).  With a ``store``, already-completed cells are
    loaded instead of recomputed, and every fresh cell is appended to the
    store the moment it finishes, so an interrupted sweep loses at most
    the cells in flight.

    ``backend`` selects the execution strategy:

    * ``None`` (default) — serial in-process when ``max_workers == 1``,
      process pool otherwise (the historical behavior);
    * ``"serial"`` — force in-process execution regardless of workers;
    * ``"process"`` — force the process pool (needs ``max_workers > 1``);
    * ``"batched"`` — group batchable same-``(density, algorithm)`` tasks
      and advance them in lock-step through the phase pipeline with
      cross-cell stacked kernels (see :mod:`repro.experiments.lockstep`);
      tasks whose tracker cannot batch fall back to the serial/process
      path.  Bit-identical to the serial engine by construction.

    Every backend produces the same cells in the same task order.

    With ``checkpoint_every=n`` (requires a ``store``), every in-flight cell
    appends a mid-cell checkpoint record to the store after each ``n``-th
    completed iteration; an interrupted sweep then resumes each partial cell
    from its latest checkpoint instead of from iteration 0, bit-identical to
    the uninterrupted run.  Checkpointing executes cells in-process — the
    batched backend routes its cells through the per-cell serial path, and
    the process pool is rejected outright.

    ``kernel_backend`` requests a hot-path kernel backend for every cell
    (see :mod:`repro.kernels.backends`): ``"numpy"`` (reference) or
    ``"numba"`` (JIT, bit-identical by contract, so results never depend on
    the choice).  It is applied per executed cell — pool workers opt in at
    spawn via an initializer that also pre-compiles the JIT variants — and
    the resolved per-kernel map lands in ``RunSummary.kernel_backends``.
    """
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    if backend not in (None, "serial", "process", "batched"):
        raise ValueError(
            f"unknown backend {backend!r}; choose 'serial', 'process' or 'batched'"
        )
    if backend == "process" and max_workers < 2:
        raise ValueError("backend='process' needs max_workers > 1")
    if checkpoint_every is not None:
        if checkpoint_every < 1:
            raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
        if store is None:
            raise ValueError("checkpoint_every requires a store to append to")
        if backend == "process" or (backend is None and max_workers > 1):
            raise ValueError(
                "checkpoint_every requires in-process execution; use "
                "backend='serial' or 'batched' (checkpoint records stream "
                "into the store as cells run, which a process pool cannot do)"
            )
    if kernel_backend is not None:
        from ..kernels.backends import kernel_backend_names

        if kernel_backend not in kernel_backend_names():
            raise ValueError(
                f"unknown kernel_backend {kernel_backend!r}; registered: "
                f"{list(kernel_backend_names())}"
            )
    scenario_kwargs = dict(scenario_kwargs or {})
    trajectory_kwargs = dict(trajectory_kwargs or {})
    for task in tasks:
        if task.algorithm not in factories:
            raise ValueError(f"no factory for algorithm {task.algorithm!r}")

    fingerprint = sweep_fingerprint(
        base_seed, n_iterations, scenario_kwargs, trajectory_kwargs
    )
    if store is not None and not isinstance(store, JsonlStore):
        store = JsonlStore(store)
    done = store.load(fingerprint) if store is not None else {}

    results: list[CellResult | None] = [None] * len(tasks)
    pending: list[tuple[int, _TaskSpec]] = []
    for i, task in enumerate(tasks):
        if task.key in done:
            results[i] = done[task.key]
        else:
            pending.append(
                (
                    i,
                    _TaskSpec(
                        task=task,
                        base_seed=base_seed,
                        n_iterations=n_iterations,
                        factory=factories[task.algorithm],
                        scenario_kwargs=scenario_kwargs,
                        trajectory_kwargs=trajectory_kwargs,
                        kernel_backend=kernel_backend,
                    ),
                )
            )

    from ..kernels import backends as _kernel_backends

    if kernel_backend is not None:
        # resolve (and pre-compile) once up front so the first cell never
        # pays JIT warm-up, and record what will actually serve each kernel
        with _kernel_backends.use_kernel_backend(kernel_backend):
            _kernel_backends.warm_up_kernels()
            backend_map = _kernel_backends.kernel_backend_info()["kernels"]
    else:
        backend_map = _kernel_backends.kernel_backend_info()["kernels"]
    resolved_kernel_backends = tuple(
        sorted((k, v["backend"]) for k, v in backend_map.items())
    )

    t0 = time.perf_counter()
    remaining = pending
    if backend == "batched" and pending and checkpoint_every is None:
        from contextlib import nullcontext

        from .lockstep import partition_batchable, run_lockstep

        batchable, remaining = partition_batchable(pending)
        scope = (
            _kernel_backends.use_kernel_backend(kernel_backend)
            if kernel_backend is not None
            else nullcontext()
        )
        with scope:  # the lock-step engine calls the kernels directly
            for i, cell in run_lockstep(batchable):
                results[i] = cell
                if store is not None:
                    store.append(cell.to_record(fingerprint))
    use_pool = (
        backend != "serial"
        and checkpoint_every is None
        and max_workers > 1
        and len(remaining) > 1
    )
    n_checkpoint_resumed = 0
    if not use_pool:
        partial = (
            store.load_checkpoints(fingerprint)
            if checkpoint_every is not None
            else {}
        )
        for i, spec in remaining:
            if checkpoint_every is not None:
                task = spec.task

                def sink(cp, task=task):
                    store.append(checkpoint_record(fingerprint, task, cp))

                resume = partial.get(task.key)
                if resume is not None:
                    n_checkpoint_resumed += 1
                cell = _execute_task(
                    spec,
                    checkpoint_every=checkpoint_every,
                    checkpoint_sink=sink,
                    resume_from=resume,
                )
            else:
                cell = _execute_task(spec)
            results[i] = cell
            if store is not None:
                store.append(cell.to_record(fingerprint))
    else:
        for _, spec in remaining:
            try:
                pickle.dumps(spec)
            except Exception as exc:
                raise ValueError(
                    "parallel sweeps need picklable factories (module-level "
                    "functions); pass max_workers=1 for closure factories"
                ) from exc
        with ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_pool_initializer,
            initargs=(kernel_backend,),
        ) as executor:
            future_to_index = {
                executor.submit(_execute_task, spec): i for i, spec in remaining
            }
            outstanding = set(future_to_index)
            while outstanding:
                finished, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in finished:
                    cell = future.result()
                    results[future_to_index[future]] = cell
                    # persist in completion order: the store is unordered,
                    # and waiting for the whole pool would forfeit resume
                    if store is not None:
                        store.append(cell.to_record(fingerprint))
    wall_clock = time.perf_counter() - t0

    cells = [r for r in results if r is not None]
    assert len(cells) == len(tasks)
    n_resumed = sum(1 for c in cells if c.resumed)
    summary = RunSummary(
        n_tasks=len(tasks),
        n_executed=len(tasks) - n_resumed,
        n_resumed=n_resumed,
        max_workers=max_workers,
        wall_clock_s=wall_clock,
        task_time_s=float(sum(c.elapsed_s for c in cells if not c.resumed)),
        n_checkpoint_resumed=n_checkpoint_resumed,
        kernel_backends=resolved_kernel_backends,
    )
    return cells, summary
