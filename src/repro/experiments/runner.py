"""The tracking-run driver: wire a tracker to the sensing layer and collect results.

The runner owns ground truth (trajectory) and the sensing layer (detection +
measurement generation).  Per iteration it builds a :class:`StepContext` —
which nodes detected, what each measured — and hands it to the tracker.  The
tracker drives all communication itself through its medium; the runner never
moves algorithm data between nodes.

CDPF's one-iteration correction latency is handled here: a tracker reports
``estimate_iteration()`` alongside each estimate and the runner files the
estimate under the iteration it refers to, so RMSE compares like with like.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from ..models.trajectory import Trajectory
from ..runtime import EventBus, IterationEvent, PhaseProfile
from ..runtime.checkpoint import RunCheckpoint, restore_rng, snapshot_rng
from ..scenario import Scenario, StepContext, Tracker
from .metrics import ErrorSummary, cost_series, summarize_errors
from .options import CheckpointPolicy, RunOptions

__all__ = [
    "StepOutcome",
    "TrackingResult",
    "TrackingRun",
    "run_tracking",
    "generate_step_context",
    "summarize_tracking_run",
    "snapshot_tracking_run",
    "restore_tracking_run",
]

#: the bare run-shaping keywords retired in favor of ``options=RunOptions(...)``
_RETIRED_KWARGS = frozenset({"fault_plan", "on_iteration", "bus"})

#: checkpoint kwargs in the warn-once stage of the same migration
#: (``options=RunOptions(checkpoint=CheckpointPolicy(...))`` is the new home)
_DEPRECATED_CHECKPOINT_KWARGS = ("checkpoint_every", "checkpoint_sink", "resume_from")
_checkpoint_kwargs_warned: set[str] = set()


def _warn_checkpoint_kwargs(names: list[str]) -> None:
    """Warn once per kwarg name per process, mirroring the retired
    ``fault_plan``/``bus`` migration's one-release deprecation stage."""
    fresh = [n for n in names if n not in _checkpoint_kwargs_warned]
    if not fresh:
        return
    _checkpoint_kwargs_warned.update(fresh)
    warnings.warn(
        f"passing {', '.join(fresh)} directly to run_tracking() is "
        "deprecated; pass options=RunOptions(checkpoint=CheckpointPolicy("
        "every=..., sink=..., resume_from=...)) instead.  The bare kwargs "
        "will be removed next release, like fault_plan/bus before them.",
        DeprecationWarning,
        stacklevel=4,
    )


def reset_checkpoint_kwargs_warning() -> None:
    """Re-arm the warn-once guard (test isolation helper)."""
    _checkpoint_kwargs_warned.clear()


@dataclass
class TrackingResult:
    """Everything one tracking run produced."""

    tracker_name: str
    estimates: dict[int, np.ndarray]
    truth: np.ndarray  # (K + 1, 2) true positions at filter instants
    n_iterations: int
    total_bytes: int
    total_messages: int
    bytes_per_iteration: np.ndarray
    messages_per_iteration: np.ndarray
    bytes_by_category: dict[str, int]
    error: ErrorSummary
    detectors_per_iteration: list[int] = field(default_factory=list)
    #: iterations where the tracker degraded gracefully under channel loss
    #: (renormalized against an incomplete total, or fell back to
    #: prior-weight propagation); 0 on a reliable medium
    degraded_iterations: int = 0
    #: channel-loss ledger: traffic that was transmitted (and charged) but
    #: never delivered.  All 0 on a reliable medium.
    dropped_bytes: int = 0
    dropped_messages: int = 0
    dropped_bytes_by_category: dict[str, int] = field(default_factory=dict)
    #: per-phase cost breakdown (None for trackers without a phase pipeline)
    phase_profile: PhaseProfile | None = None

    @property
    def rmse(self) -> float:
        return self.error.rmse

    @property
    def mean_bytes_per_iteration(self) -> float:
        """Average cost over the iterations the target was actually in the field.

        "Active" means the sensing layer produced at least one detector that
        iteration; an active iteration that genuinely cost 0 bytes counts
        toward the mean instead of being conflated with the target being
        outside the field (the old ``bytes > 0`` heuristic dropped both).
        """
        detectors = np.asarray(self.detectors_per_iteration)
        if detectors.size == self.bytes_per_iteration.size and detectors.size:
            active = self.bytes_per_iteration[detectors > 0]
        else:  # detector counts unavailable (hand-built result): old heuristic
            active = self.bytes_per_iteration[self.bytes_per_iteration > 0]
        return float(active.mean()) if active.size else 0.0


def generate_step_context(
    scenario: Scenario,
    trajectory: Trajectory,
    k: int,
    rng: np.random.Generator,
) -> StepContext:
    """Run the sensing layer for iteration ``k``: who detects, who measures what.

    Detection and measurement use the PHYSICAL node geometry (which equals
    the believed one unless a localization error is configured).
    """
    physical = scenario.physical_deployment
    index = physical.index
    if k == 0 or not scenario.detect_on_path:
        path = trajectory.position_at_iteration(k)[None, :]
    else:
        path = trajectory.interval_path(k)
    detectors = scenario.detection.detect(index, path, rng)
    target_state = np.concatenate(
        [trajectory.position_at_iteration(k), trajectory.velocity_at_iteration(k)]
    )
    positions = physical.positions
    # per-iteration common-mode bearing error, shared by every sensor
    bias = rng.normal(0.0, scenario.measurement_bias_std) if scenario.measurement_bias_std else 0.0
    measurements = {
        int(nid): scenario.measurement.measure(target_state, rng, positions[int(nid)]) + bias
        for nid in detectors
    }
    return StepContext(iteration=k, detectors=detectors, measurements=measurements)


def generate_multi_step_context(
    scenario: Scenario,
    trajectories: list[Trajectory],
    k: int,
    rng: np.random.Generator,
) -> StepContext:
    """Sensing layer for several simultaneous targets.

    Each node reports at most one measurement; a node inside several
    targets' sensing ranges measures the *nearest* one (a single-channel
    sensor).  Used by the multi-target extension.

    Detection and measurement use the PHYSICAL node geometry, exactly as
    the single-target path does: localization error shifts what the nodes
    *believe*, never what their hardware senses.
    """
    physical = scenario.physical_deployment
    positions = physical.positions
    index = physical.index
    owner: dict[int, int] = {}  # node id -> index of the target it measures
    for ti, trajectory in enumerate(trajectories):
        if k > trajectory.n_iterations:
            continue
        if k == 0 or not scenario.detect_on_path:
            path = trajectory.position_at_iteration(k)[None, :]
        else:
            path = trajectory.interval_path(k)
        for nid in scenario.detection.detect(index, path, rng):
            nid = int(nid)
            target_pos = trajectory.position_at_iteration(k)
            if nid not in owner:
                owner[nid] = ti
            else:
                prev = trajectories[owner[nid]].position_at_iteration(k)
                if np.linalg.norm(positions[nid] - target_pos) < np.linalg.norm(
                    positions[nid] - prev
                ):
                    owner[nid] = ti
    bias = rng.normal(0.0, scenario.measurement_bias_std) if scenario.measurement_bias_std else 0.0
    measurements = {}
    for nid, ti in owner.items():
        trajectory = trajectories[ti]
        state = np.concatenate(
            [trajectory.position_at_iteration(k), trajectory.velocity_at_iteration(k)]
        )
        measurements[nid] = scenario.measurement.measure(state, rng, positions[nid]) + bias
    detectors = np.array(sorted(owner), dtype=np.intp)
    return StepContext(iteration=k, detectors=detectors, measurements=measurements)


def snapshot_tracking_run(
    tracker: Tracker,
    *,
    rng: np.random.Generator,
    next_iteration: int,
    estimates: dict[int, np.ndarray],
    detectors_per_iteration: list[int],
) -> RunCheckpoint:
    """Compose the full run-level checkpoint at an iteration boundary.

    The tracker snapshots its own mutable state (particles, estimate memory,
    stats, RNG stream); the medium — owned at this layer, shared across
    trackers under the multi-target wrapper — snapshots separately; the
    runner contributes its loop state: the sensing stream, the next
    iteration index, and the accumulated estimate/detector series.
    """
    payload = {
        "tracker": tracker.snapshot(),
        "medium": tracker.medium.snapshot(),
        "sensing_rng": snapshot_rng(rng),
        "next_iteration": int(next_iteration),
        "estimates": [
            [int(i), np.asarray(est, dtype=np.float64)]
            for i, est in sorted(estimates.items())
        ],
        "detectors": [int(d) for d in detectors_per_iteration],
    }
    return RunCheckpoint(iteration=int(next_iteration) - 1, payload=payload)


def restore_tracking_run(
    tracker: Tracker,
    checkpoint: RunCheckpoint,
    *,
    rng: np.random.Generator,
) -> tuple[int, dict[int, np.ndarray], list[int]]:
    """Transplant a checkpoint into a freshly built, configuration-identical
    run.  Returns ``(next_iteration, estimates, detectors_per_iteration)``
    for the runner to resume its loop from."""
    payload = checkpoint.payload
    tracker.restore(payload["tracker"])
    tracker.medium.restore(payload["medium"])
    restore_rng(rng, payload["sensing_rng"])
    estimates = {
        int(i): np.asarray(est, dtype=np.float64).copy()
        for i, est in payload["estimates"]
    }
    detectors = [int(d) for d in payload["detectors"]]
    return int(payload["next_iteration"]), estimates, detectors


@dataclass(frozen=True)
class StepOutcome:
    """What one :meth:`TrackingRun.step` produced."""

    iteration: int
    context: StepContext
    estimate: np.ndarray | None
    estimate_iteration: int | None
    #: the run finished with this step (no further iterations remain)
    done: bool


class TrackingRun:
    """One tracking run as an incrementally steppable object.

    :func:`run_tracking` drives a ``TrackingRun`` start to finish; the
    service layer (:mod:`repro.service`) steps many of them interleaved.
    Both paths execute the *same* per-iteration body, so an interleaved
    session is bit-identical to its batch run by construction — each run
    owns its tracker, medium and sensing stream, and ``step`` touches
    nothing outside them.

    The run is also :class:`~repro.runtime.checkpoint.Checkpointable`-shaped
    at the run level: :meth:`snapshot` captures tracker + medium + sensing
    stream + loop state at the current iteration boundary, and
    :meth:`restore` transplants such a checkpoint into a freshly built,
    configuration-identical run.
    """

    def __init__(
        self,
        tracker: Tracker,
        scenario: Scenario,
        trajectory: Trajectory,
        *,
        rng: np.random.Generator,
        options: RunOptions | None = None,
    ) -> None:
        self.tracker = tracker
        self.scenario = scenario
        self.trajectory = trajectory
        self.rng = rng
        self.options = options if options is not None else RunOptions()
        self.n_iterations = trajectory.n_iterations
        self.next_iteration = 0
        self.estimates: dict[int, np.ndarray] = {}
        self.detectors_per_iteration: list[int] = []
        pipeline = getattr(tracker, "pipeline", None)
        if self.options.bus is not None and pipeline is not None:
            pipeline.bus = self.options.bus
        policy = self.options.checkpoint
        if policy is not None and policy.resume_from is not None:
            self.restore(policy.resume_from)

    @property
    def done(self) -> bool:
        return self.next_iteration > self.n_iterations

    def step(self) -> StepOutcome:
        """Execute the next iteration: faults, sensing, tracker, events.

        After the iteration completes, a periodic checkpoint is emitted if
        the options' :class:`~repro.experiments.options.CheckpointPolicy`
        says one is due (never after the final iteration — the finished run
        needs no resume point).
        """
        if self.done:
            raise RuntimeError(
                f"tracking run is finished (all {self.n_iterations + 1} "
                "iterations executed); build a new run to go again"
            )
        k = self.next_iteration
        options = self.options
        if options.kernel_backend is not None:
            from ..kernels.backends import use_kernel_backend

            with use_kernel_backend(options.kernel_backend):
                return self._step_body(k, options)
        return self._step_body(k, options)

    def _step_body(self, k: int, options: RunOptions) -> StepOutcome:
        tracker = self.tracker
        fault_plan = options.fault_plan
        if fault_plan is not None:
            fault_plan.apply(tracker.medium, k)
        ctx = generate_step_context(self.scenario, self.trajectory, k, self.rng)
        if fault_plan is not None:
            medium = tracker.medium
            alive = [int(d) for d in np.asarray(ctx.detectors).ravel()
                     if medium.is_available(int(d))]
            ctx = StepContext(
                iteration=k,
                detectors=np.array(alive, dtype=np.intp),
                measurements={n: ctx.measurements[n] for n in alive},
            )
        self.detectors_per_iteration.append(int(np.asarray(ctx.detectors).size))
        est = tracker.step(ctx)
        ref = None
        if est is not None:
            ref = tracker.estimate_iteration()
            if ref is None:
                raise RuntimeError(
                    f"{tracker.name} returned an estimate without an iteration reference"
                )
            if 0 <= ref <= self.n_iterations:
                self.estimates[ref] = np.asarray(est, dtype=np.float64).copy()
        if options.on_iteration is not None:
            options.on_iteration(k, ctx, est)
        if options.bus is not None:
            options.bus.emit(
                IterationEvent(
                    tracker=tracker.name,
                    iteration=k,
                    context=ctx,
                    estimate=est,
                    estimate_iteration=ref,
                )
            )
        self.next_iteration = k + 1
        policy = options.checkpoint
        if (
            policy is not None
            and policy.every is not None
            and (k + 1) % policy.every == 0
            and k < self.n_iterations
        ):
            policy.sink(self.snapshot())
        return StepOutcome(
            iteration=k,
            context=ctx,
            estimate=est,
            estimate_iteration=ref,
            done=self.done,
        )

    def snapshot(self) -> RunCheckpoint:
        """The full run state at the current iteration boundary."""
        return snapshot_tracking_run(
            self.tracker,
            rng=self.rng,
            next_iteration=self.next_iteration,
            estimates=self.estimates,
            detectors_per_iteration=self.detectors_per_iteration,
        )

    def restore(self, checkpoint: RunCheckpoint) -> None:
        """Transplant ``checkpoint`` into this (freshly built) run."""
        (
            self.next_iteration,
            self.estimates,
            self.detectors_per_iteration,
        ) = restore_tracking_run(self.tracker, checkpoint, rng=self.rng)

    def run(self) -> TrackingResult:
        """Drive the remaining iterations to completion and summarize."""
        while not self.done:
            self.step()
        return self.result()

    def result(self) -> TrackingResult:
        """Summarize the finished run (raises if iterations remain)."""
        if not self.done:
            raise RuntimeError(
                f"tracking run is not finished (next iteration "
                f"{self.next_iteration} of {self.n_iterations})"
            )
        return summarize_tracking_run(
            self.tracker, self.trajectory, self.estimates,
            self.detectors_per_iteration,
        )


def run_tracking(
    tracker: Tracker,
    scenario: Scenario,
    trajectory: Trajectory,
    *,
    rng: np.random.Generator,
    options: RunOptions | None = None,
    checkpoint_every: int | None = None,
    checkpoint_sink: Callable[[RunCheckpoint], None] | None = None,
    resume_from: RunCheckpoint | None = None,
    **retired: object,
) -> TrackingResult:
    """Drive ``tracker`` along the whole trajectory and summarize the run.

    Iterations outside the deployment field (the target leaves the area) are
    still executed — detectors simply become empty, exactly as in a real
    deployment.

    Run-shaping knobs travel in ``options`` (a :class:`~repro.experiments.
    options.RunOptions`): ``options.fault_plan`` (a :class:`~repro.network.
    faults.FaultPlan`) is replayed against the tracker's medium at the start
    of each iteration — crashed and sleeping nodes stop sensing as well as
    transmitting; ``options.bus`` attaches an :class:`~repro.runtime.events.
    EventBus` on which the pipeline emits per-phase events and the runner one
    :class:`~repro.runtime.events.IterationEvent` per step;
    ``options.on_iteration`` is the legacy plain-callable hook (prefer a bus
    subscriber via :func:`~repro.experiments.options.iteration_subscriber`).

    Checkpointing travels in ``options.checkpoint`` (a :class:`~repro.
    experiments.options.CheckpointPolicy`): with ``every=n``, after every
    ``n``-th completed iteration the full run state (tracker, medium,
    sensing stream, accumulated estimates) is snapshotted into a
    :class:`~repro.runtime.checkpoint.RunCheckpoint` and handed to the
    policy's ``sink``; ``resume_from`` transplants such a checkpoint into a
    freshly built, configuration-identical run and continues from the next
    iteration — bit-identical to the uninterrupted run.  The bare
    ``checkpoint_every``/``checkpoint_sink``/``resume_from`` kwargs are a
    deprecated spelling of the same policy (warn-once, removed next
    release).
    """
    if retired:
        names = sorted(set(retired) & _RETIRED_KWARGS)
        if names:
            raise TypeError(
                f"run_tracking() no longer accepts the bare {', '.join(names)} "
                "keyword(s); pass options=RunOptions(...) instead"
            )
        raise TypeError(
            "run_tracking() got unexpected keyword argument(s): "
            + ", ".join(sorted(retired))
        )
    if options is None:
        options = RunOptions()
    legacy = {
        name: value
        for name, value in zip(
            _DEPRECATED_CHECKPOINT_KWARGS,
            (checkpoint_every, checkpoint_sink, resume_from),
        )
        if value is not None
    }
    if legacy:
        if options.checkpoint is not None:
            # rejected outright — don't also burn the one-shot deprecation
            # warning on a call that never runs
            raise TypeError(
                "pass checkpointing either as options.checkpoint or as the "
                f"deprecated bare {', '.join(sorted(legacy))} keyword(s), "
                "not both"
            )
        _warn_checkpoint_kwargs(sorted(legacy))
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if checkpoint_every is not None and checkpoint_sink is None:
            raise ValueError("checkpoint_every requires a checkpoint_sink callable")
        options = replace(
            options,
            checkpoint=CheckpointPolicy(
                every=checkpoint_every,
                sink=checkpoint_sink,
                resume_from=resume_from,
            ),
        )
    return TrackingRun(
        tracker, scenario, trajectory, rng=rng, options=options
    ).run()


def summarize_tracking_run(
    tracker: Tracker,
    trajectory: Trajectory,
    estimates: dict[int, np.ndarray],
    detectors_per_iteration: list[int],
) -> TrackingResult:
    """Assemble the :class:`TrackingResult` of a finished run.

    Shared by :func:`run_tracking` and the lock-step batched backend
    (:mod:`repro.experiments.lockstep`), so both execution strategies
    summarize a run through the exact same code path.
    """
    n_iter = trajectory.n_iterations
    truth = trajectory.iteration_positions()
    accounting = tracker.accounting
    series = cost_series(accounting, n_iter)
    stats = getattr(tracker, "stats", None)
    pipeline = getattr(tracker, "pipeline", None)
    profile = (
        PhaseProfile.from_tracker(tracker)
        if pipeline is not None and stats is not None
        else None
    )
    return TrackingResult(
        tracker_name=tracker.name,
        estimates=estimates,
        truth=truth,
        n_iterations=n_iter,
        total_bytes=accounting.total_bytes,
        total_messages=accounting.total_messages,
        bytes_per_iteration=series["bytes"],
        messages_per_iteration=series["messages"],
        bytes_by_category=accounting.bytes_by_category(),
        error=summarize_errors(estimates, truth, n_iter + 1),
        detectors_per_iteration=detectors_per_iteration,
        degraded_iterations=(
            int(stats.degraded_iterations) if stats is not None else 0
        ),
        dropped_bytes=accounting.total_dropped_bytes,
        dropped_messages=accounting.total_dropped_messages,
        dropped_bytes_by_category=accounting.dropped_bytes_by_category(),
        phase_profile=profile,
    )
