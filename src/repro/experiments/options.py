"""RunOptions: the consolidated knob surface of :func:`run_tracking`.

``run_tracking`` started with one keyword (``rng``) and grew three more as
subsystems landed — ``fault_plan`` (fault injection), ``on_iteration`` (the
legacy per-step callback) and ``bus`` (the event bus).  Every new knob
widened the signature of every wrapper that forwards to the runner.  This
module freezes that growth: all run-shaping knobs live in one immutable
:class:`RunOptions` value that callers build once and pass as ``options=``.

The old bare keyword arguments (``fault_plan`` / ``on_iteration`` / ``bus``
passed directly to ``run_tracking``) went through a warn-once deprecation
shim for one release and are now rejected with a :class:`TypeError` naming
the offending keywords and the ``options=RunOptions(...)`` migration.  The
checkpoint kwargs (``checkpoint_every`` / ``checkpoint_sink`` /
``resume_from``) are in the warn-once stage of the same migration: they
still work for one release, folding into a :class:`CheckpointPolicy`, and
new code passes ``options=RunOptions(checkpoint=CheckpointPolicy(...))``.

For per-iteration observation, prefer subscribing to the event bus over the
legacy callback::

    bus = EventBus()
    bus.subscribe(iteration_subscriber(lambda k, ctx, est: ...))
    run_tracking(tracker, scenario, trajectory, rng=rng,
                 options=RunOptions(bus=bus))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from ..runtime import EventBus, IterationEvent

if TYPE_CHECKING:  # pragma: no cover
    from ..network.faults import FaultPlan
    from ..runtime.checkpoint import RunCheckpoint
    from ..scenario import StepContext

__all__ = ["CheckpointPolicy", "RunOptions", "iteration_subscriber"]

#: signature of the legacy per-iteration callback
IterationCallback = Callable[[int, "StepContext", Any], None]


@dataclass(frozen=True)
class CheckpointPolicy:
    """When and where a tracking run snapshots (and resumes) its state.

    Parameters
    ----------
    every:
        Snapshot the full run state after every ``every``-th completed
        iteration (a :class:`~repro.runtime.checkpoint.RunCheckpoint` is
        handed to ``sink``).  ``None`` disables periodic snapshots.
    sink:
        Receives each periodic checkpoint; required when ``every`` is set.
        Typically appends to a JSONL store or a list.
    resume_from:
        A checkpoint to transplant into the freshly built run before the
        first step — the run continues from ``resume_from.iteration + 1``,
        bit-identical to the uninterrupted run.
    """

    every: int | None = None
    sink: "Callable[[RunCheckpoint], None] | None" = None
    resume_from: "RunCheckpoint | None" = None

    def __post_init__(self) -> None:
        if self.every is not None:
            if self.every < 1:
                raise ValueError(
                    f"checkpoint every must be >= 1, got {self.every}"
                )
            if self.sink is None:
                raise ValueError(
                    "CheckpointPolicy(every=...) requires a sink callable"
                )


@dataclass(frozen=True)
class RunOptions:
    """Everything that shapes a tracking run besides the world itself.

    Parameters
    ----------
    fault_plan:
        A :class:`~repro.network.faults.FaultPlan` replayed against the
        tracker's medium at the start of each iteration (crash/sleep/wake
        events); ``None`` runs fault-free.
    bus:
        An :class:`~repro.runtime.events.EventBus` attached for the run:
        the pipeline emits per-phase events on it and the runner emits one
        :class:`~repro.runtime.events.IterationEvent` per step.
    on_iteration:
        The legacy plain-callable hook ``(iteration, context, estimate)``.
        Still honored, but new code should subscribe to ``bus`` via
        :func:`iteration_subscriber` instead — the bus also carries phase
        events and composes with other subscribers.
    checkpoint:
        A :class:`CheckpointPolicy` shaping periodic snapshots and resume;
        ``None`` runs without checkpointing.
    kernel_backend:
        Kernel backend requested for the run's hot paths (see
        :mod:`repro.kernels.backends`): ``"numpy"`` (the reference) or
        ``"numba"`` (JIT-compiled, bit-identical by contract).  ``None``
        keeps the process default.  The request is scoped to each
        :meth:`~repro.experiments.runner.TrackingRun.step`, so interleaved
        runs (the service) can mix backends; a process pinned via
        ``REPRO_KERNEL_BACKEND`` overrides it with a warn-once.
    """

    fault_plan: "FaultPlan | None" = None
    bus: EventBus | None = None
    on_iteration: IterationCallback | None = None
    checkpoint: CheckpointPolicy | None = None
    kernel_backend: str | None = None

    def __post_init__(self) -> None:
        if self.kernel_backend is not None:
            from ..kernels.backends import kernel_backend_names

            if self.kernel_backend not in kernel_backend_names():
                raise ValueError(
                    f"unknown kernel_backend {self.kernel_backend!r}; "
                    f"registered: {list(kernel_backend_names())}"
                )


def iteration_subscriber(callback: IterationCallback) -> Callable[[Any], None]:
    """Adapt an ``(iteration, context, estimate)`` callback to a bus handler.

    The returned handler ignores every event except
    :class:`~repro.runtime.events.IterationEvent`, on which it invokes
    ``callback`` with the legacy ``on_iteration`` argument shape — the
    recommended migration path off the deprecated ``on_iteration`` kwarg.
    """

    def handler(event: Any) -> None:
        if isinstance(event, IterationEvent):
            callback(event.iteration, event.context, event.estimate)

    return handler
