"""Batched estimated-contribution evaluation (paper Definition 2).

``estimated_contributions`` normalizes ``1 / max(d_i, d_min)`` over one
estimation area; CDPF-NE evaluates it once per particle holder per
iteration, each time over that holder's own neighborhood.  The batched form
takes every holder's distances concatenated into one flat array plus CSR
offsets and evaluates all areas with two vectorized passes.

Bit-identity contract: numpy's pairwise summation depends only on the
length, order and values of the summed array, so each group's total is
computed with a contiguous per-group ``.sum()`` (NOT ``np.add.reduceat``,
whose sequential accumulation diverges from pairwise summation for groups
of 9+ elements).  The elementwise inverse and the final divide are shared
across groups — elementwise ops are bitwise independent of batching.
"""

from __future__ import annotations

import numpy as np

__all__ = ["batch_contributions", "concat_csr", "group_sums"]


def concat_csr(groups) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate per-group arrays into a CSR (flat, offsets) pair.

    The cross-cell batching idiom: collect each cell's groups, concatenate
    once, evaluate one kernel call over the flat array, slice results back
    out with the offsets.  Empty ``groups`` returns an empty flat array and
    the single offset ``[0]``.
    """
    groups = [np.asarray(g, dtype=np.float64) for g in groups]
    counts = np.array([g.size for g in groups], dtype=np.intp)
    offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.intp)
    flat = (
        np.concatenate(groups) if groups else np.empty(0, dtype=np.float64)
    )
    return flat, offsets


def group_sums(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-group sums of a CSR-flattened array, pairwise per group.

    ``offsets`` has ``n_groups + 1`` entries; group ``g`` is
    ``values[offsets[g]:offsets[g + 1]]``.  Each group is summed with
    numpy's pairwise reduction — bit-identical to summing the group as a
    standalone array.
    """
    offsets = np.asarray(offsets)
    n_groups = offsets.size - 1
    out = np.empty(n_groups, dtype=np.float64)
    for g in range(n_groups):
        out[g] = values[offsets[g] : offsets[g + 1]].sum()
    return out


def batch_contributions(
    distances: np.ndarray,
    offsets: np.ndarray | None = None,
    *,
    d_min: float = 1e-3,
) -> np.ndarray:
    """Normalized ``1 / (d_i * D)`` contributions for one or many areas.

    Parameters
    ----------
    distances:
        Flat float64 array of distances, all areas concatenated.
    offsets:
        CSR offsets (``n_groups + 1`` entries) delimiting the areas.
        ``None`` treats ``distances`` as a single area (the scalar-path
        call shape of :func:`repro.core.contributions.estimated_contributions`).
    d_min:
        Distance clamp keeping a sensor at the target's exact position from
        absorbing all the weight.

    Returns the flat contribution array, same shape as ``distances``; each
    group sums to 1.  Inputs are validated by the caller (the core module
    keeps its own error surface); this kernel assumes finite non-negative
    distances and non-empty groups.
    """
    distances = np.asarray(distances, dtype=np.float64)
    inv = 1.0 / np.maximum(distances, d_min)
    if offsets is None:
        return inv / inv.sum()
    offsets = np.asarray(offsets)
    totals = group_sums(inv, offsets)
    counts = np.diff(offsets)
    return inv / np.repeat(totals, counts)
