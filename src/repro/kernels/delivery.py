"""Vectorized keyed uniform draws for per-copy link delivery.

The link models draw one uniform per (message copy, directed link) from
``np.random.default_rng(SeedSequence(seed, spawn_key=key)).random()`` —
deterministic and order-independent, but building a ``SeedSequence`` and a
``Generator`` per copy costs tens of microseconds of pure Python/object
overhead.  This module replays the exact same computation for a whole batch
of receivers in vectorized ``uint64`` arithmetic:

* the SeedSequence entropy-mixing pool (Knuth-style multiplicative hashing
  with the documented INIT_A/MULT_A/... constants), with the entropy padded
  to the pool size *before* the spawn key is appended — so the assembled
  word list for ``SeedSequence(seed, spawn_key=(tag, sender, receiver,
  iteration, nonce))`` is ``[seed, 0, 0, 0, tag, sender, receiver,
  iteration, nonce]``;
* ``generate_state(4, uint64)`` producing PCG64's 256-bit seed material;
* PCG64 seeding (``initstate``/``initseq``), one LCG step, and the XSL-RR
  output function, with 128-bit arithmetic carried as (hi, lo) uint64 pairs
  and 64x64 products split into 32-bit limbs;
* the 53-bit mantissa scaling of ``Generator.random()``.

``link_uniform_many(seed, tag, sender, receivers, iteration, nonces)`` is
bit-exact against the scalar ``_link_uniform`` for every key
(``tests/kernels/test_delivery_kernel.py`` pins this property), which is
what lets the medium vectorize loss draws without changing a single
delivery outcome anywhere.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "OUTCOME_DELIVER",
    "OUTCOME_DROP",
    "OUTCOME_DELAY",
    "link_uniform_many",
    "batch_deliver",
]

#: Outcome codes used by the batched classify path (``LinkModel.classify_many``).
OUTCOME_DELIVER, OUTCOME_DROP, OUTCOME_DELAY = 0, 1, 2

_M32 = np.uint64(0xFFFFFFFF)
_INIT_A = np.uint64(0x43B0D7E5)
_MULT_A = np.uint64(0x931E8875)
_INIT_B = np.uint64(0x8B51F9DD)
_MULT_B = np.uint64(0x58F38DED)
_MIX_MULT_L = np.uint64(0xCA01F9DD)
_MIX_MULT_R = np.uint64(0x4973F715)
_XSHIFT = np.uint64(16)
_POOL_SIZE = 4

# PCG64's 128-bit LCG multiplier, split into 64-bit halves.
_PCG_MULT_HI = np.uint64(2549297995355413924)
_PCG_MULT_LO = np.uint64(4865540595714422341)


def _hashmix(value: np.ndarray, hash_const: np.uint64):
    """One SeedSequence hashmix step on uint32-domain words."""
    value = (value ^ hash_const) & _M32
    hash_const = (hash_const * _MULT_A) & _M32
    value = (value * hash_const) & _M32
    value = (value ^ (value >> _XSHIFT)) & _M32
    return value, hash_const


def _mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    result = ((x * _MIX_MULT_L) - (y * _MIX_MULT_R)) & _M32
    return (result ^ (result >> _XSHIFT)) & _M32


def _seed_pool(entropy_words: np.ndarray) -> np.ndarray:
    """SeedSequence's mixed entropy pool: (n, w) words -> (n, 4) pool."""
    n, w = entropy_words.shape
    pool = np.zeros((n, _POOL_SIZE), dtype=np.uint64)
    hash_const = _INIT_A
    for i in range(_POOL_SIZE):
        src = entropy_words[:, i] if i < w else np.zeros(n, dtype=np.uint64)
        pool[:, i], hash_const = _hashmix(src, hash_const)
    for i_src in range(_POOL_SIZE):
        for i_dst in range(_POOL_SIZE):
            if i_src != i_dst:
                h, hash_const = _hashmix(pool[:, i_src], hash_const)
                pool[:, i_dst] = _mix(pool[:, i_dst], h)
    for i_src in range(_POOL_SIZE, w):
        for i_dst in range(_POOL_SIZE):
            h, hash_const = _hashmix(entropy_words[:, i_src], hash_const)
            pool[:, i_dst] = _mix(pool[:, i_dst], h)
    return pool


def _generate_state8(pool: np.ndarray) -> np.ndarray:
    """SeedSequence.generate_state(4, uint64) as 8 uint32-domain words."""
    n = pool.shape[0]
    out = np.zeros((n, 8), dtype=np.uint64)
    hash_const = _INIT_B
    for i_dst in range(8):
        data = pool[:, i_dst % _POOL_SIZE]
        data = (data ^ hash_const) & _M32
        hash_const = (hash_const * _MULT_B) & _M32
        data = (data * hash_const) & _M32
        data = (data ^ (data >> _XSHIFT)) & _M32
        out[:, i_dst] = data
    return out


def _mul_64_64(a: np.ndarray, b: np.ndarray):
    """Full 64x64 -> 128 product via 32-bit limbs; returns (hi, lo)."""
    a_lo = a & _M32
    a_hi = a >> np.uint64(32)
    b_lo = b & _M32
    b_hi = b >> np.uint64(32)
    ll = a_lo * b_lo
    lh = a_lo * b_hi
    hl = a_hi * b_lo
    hh = a_hi * b_hi
    mid = (ll >> np.uint64(32)) + (lh & _M32) + (hl & _M32)
    lo = (ll & _M32) | ((mid & _M32) << np.uint64(32))
    hi = hh + (lh >> np.uint64(32)) + (hl >> np.uint64(32)) + (mid >> np.uint64(32))
    return hi, lo


def _add128(a_hi, a_lo, b_hi, b_lo):
    lo = a_lo + b_lo
    carry = (lo < a_lo).astype(np.uint64)
    return a_hi + b_hi + carry, lo


def _pcg_step(s_hi, s_lo, inc_hi, inc_lo):
    """state = state * PCG_MULT + inc  (mod 2^128)."""
    hi, lo = _mul_64_64(s_lo, _PCG_MULT_LO)
    hi = hi + s_lo * _PCG_MULT_HI + s_hi * _PCG_MULT_LO
    return _add128(hi, lo, inc_hi, inc_lo)


def _pcg64_first_double(state8: np.ndarray) -> np.ndarray:
    """First ``Generator.random()`` of a PCG64 seeded from 8 uint32 words."""
    w = state8
    # little-endian uint64 view of the uint32 word stream
    seed0 = (w[:, 1] << np.uint64(32)) | w[:, 0]
    seed1 = (w[:, 3] << np.uint64(32)) | w[:, 2]
    seed2 = (w[:, 5] << np.uint64(32)) | w[:, 4]
    seed3 = (w[:, 7] << np.uint64(32)) | w[:, 6]
    init_hi, init_lo = seed0, seed1
    # inc = (initseq << 1) | 1, initseq = seed2 << 64 | seed3
    inc_hi = (seed2 << np.uint64(1)) | (seed3 >> np.uint64(63))
    inc_lo = (seed3 << np.uint64(1)) | np.uint64(1)
    # pcg_setseq_128_srandom: state = 0; step; state += initstate; step
    s_hi = np.zeros_like(init_hi)
    s_lo = np.zeros_like(init_lo)
    s_hi, s_lo = _pcg_step(s_hi, s_lo, inc_hi, inc_lo)
    s_hi, s_lo = _add128(s_hi, s_lo, init_hi, init_lo)
    s_hi, s_lo = _pcg_step(s_hi, s_lo, inc_hi, inc_lo)
    # next64: advance, then XSL-RR (rotr64(hi ^ lo, state >> 122))
    s_hi, s_lo = _pcg_step(s_hi, s_lo, inc_hi, inc_lo)
    xored = s_hi ^ s_lo
    rot = s_hi >> np.uint64(58)
    # numpy masks shift counts mod 64, so rot == 0 yields x | x == x
    out = (xored >> rot) | (xored << ((np.uint64(64) - rot) & np.uint64(63)))
    return (out >> np.uint64(11)).astype(np.float64) * (1.0 / 9007199254740992.0)


def link_uniform_many(
    seed: int,
    tag: int,
    sender: int,
    receivers: np.ndarray,
    iteration: int,
    nonces: np.ndarray | int,
) -> np.ndarray:
    """One keyed uniform per receiver, bit-exact to the scalar draw.

    Equals ``[_link_uniform(seed, tag, sender, r, iteration, nc) for r, nc
    in zip(receivers, nonces)]`` — the draw depends only on the key, never
    on batch shape or call order.  ``nonces`` may be a scalar applied to
    every receiver; ``sender``, ``iteration`` and ``seed`` may each be a
    scalar or a per-copy array (the cross-cell batch axis: one call can
    carry many broadcasts from many *cells*, each cell contributing its own
    medium seed, without changing any single copy's draw).
    """
    receivers = np.asarray(receivers, dtype=np.uint64)
    n = receivers.shape[0]
    words = np.zeros((n, 9), dtype=np.uint64)
    words[:, 0] = np.asarray(seed, dtype=np.uint64)
    # words 1..3 stay zero: SeedSequence pads the entropy to the pool size
    # before appending the spawn key
    words[:, 4] = np.uint64(tag)
    words[:, 5] = np.asarray(sender, dtype=np.uint64)
    words[:, 6] = receivers
    words[:, 7] = np.asarray(iteration, dtype=np.uint64)
    words[:, 8] = np.asarray(nonces, dtype=np.uint64)
    return _pcg64_first_double(_generate_state8(_seed_pool(words)))


def batch_deliver(
    link_model,
    link_override,
    sender,
    receivers: np.ndarray,
    distances: np.ndarray,
    iteration: int,
    nonces: np.ndarray,
) -> np.ndarray:
    """Fate codes for a round's copies under base + override models.

    Replicates the medium's per-copy composition: the base model classifies
    every copy; the override re-classifies only the copies the base
    delivered, with the *same* nonce (base and override share one nonce per
    copy).  ``sender`` is a scalar for one broadcast's copies or a per-copy
    array for a whole round.  Returns an int8 array of ``OUTCOME_*`` codes
    aligned with ``receivers``.
    """
    n = receivers.shape[0]
    if link_model is not None:
        out = link_model.classify_many(sender, receivers, distances, iteration, nonces)
    else:
        out = np.zeros(n, dtype=np.int8)
    if link_override is not None:
        m = out == OUTCOME_DELIVER
        if m.any():
            out = out.copy()
            sender_m = sender[m] if np.ndim(sender) else sender
            out[m] = link_override.classify_many(
                sender_m, receivers[m], distances[m], iteration, nonces[m]
            )
    return out
