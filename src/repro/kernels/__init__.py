"""Batched numpy kernels for the simulation hot paths.

Every per-iteration hot path of the trackers and the medium — estimated
contributions (Definition 2), particle propagation into the predicted area,
per-(sensor, particle) likelihood evaluation, and per-copy link-loss draws —
originally executed as Python-level loops over scalars.  This package holds
their batched equivalents, each one designed to be **bit-identical** to the
scalar code it replaces: same float operations, same order, same reduction
trees.  The golden differential suite (``tests/runtime/``) pins that
equivalence on fixed seeds, and ``benchmarks/test_bench_kernels.py`` guards
the speedups.

Modules
-------
:mod:`~repro.kernels.contributions`
    All estimation-area members of every holder in one vectorized
    ``1 / (d_i * D)`` evaluation (Definition 2), with per-group pairwise
    sums so single-group results match :func:`repro.core.contributions.
    estimated_contributions` to the last bit.
:mod:`~repro.kernels.propagation`
    Predict + recorder selection + weight division over a whole batch of
    broadcasts against one shared candidate set.
:mod:`~repro.kernels.likelihood`
    All detector measurements against all particle holders as one
    ``(holders, sensors)`` log-kernel matrix, plus the batched
    bearing log-likelihood used by the centralized SIR update.
:mod:`~repro.kernels.delivery`
    Vectorized keyed uniform draws — a bit-exact numpy replica of
    ``SeedSequence -> PCG64 -> random()`` — so the medium fans one send out
    to all in-range receivers without per-copy Python RNG construction.

Cross-cell batch axis
---------------------
The kernels also stack *across simulation cells* (the lock-step sweep
backend, :mod:`repro.experiments.lockstep`): :func:`batch_likelihood`
accepts a leading batch axis (``(B, n, 2)`` holders → ``(B, n, m)``
matrices, each slice bit-identical to its own 2-D call),
:func:`batch_contributions` + :func:`concat_csr` evaluate many cells'
estimation areas as one CSR call, :func:`batch_propagate_ragged` carries a
per-broadcast candidate set so broadcasts from many cells share one
distance/probability pass, and :func:`link_uniform_many` takes per-copy
``seed`` / ``sender`` / ``iteration`` arrays so one call can mix link draws
from many media.  The contract is unchanged: elementwise ops and per-group
pairwise reductions are bitwise independent of how calls are batched.

Backend dispatch
----------------
The four contract kernels exported here — :func:`batch_contributions`,
:func:`batch_likelihood`, :func:`batch_propagate_ragged` and
:func:`link_uniform_many` — are thin dispatch wrappers over
:mod:`repro.kernels.backends`: each call resolves the implementation the
active backend registered (numpy reference by default, ``@njit``-compiled
under the optional numba backend).  The wrappers are stable objects, so
``from repro.kernels import batch_likelihood`` at import time still sees
every later :func:`~repro.kernels.backends.set_kernel_backend` /
``REPRO_KERNEL_BACKEND`` switch — no call site binds an implementation
eagerly anymore.  Every backend is held to the same bit-exactness
contract; kernels a backend cannot serve bit-exactly fall back to numpy
per kernel (see DESIGN §4k for the ``batch_likelihood`` holdout).

The kernels depend on numpy only (no imports from the rest of the package),
so every layer of the simulator may call into them without cycles.
"""

from . import backends, contributions, delivery, likelihood, propagation
from .backends import (
    kernel_backend_info,
    set_kernel_backend,
    use_kernel_backend,
    warm_up_kernels,
)
from .backends import _ACTIVE as _DISPATCH
from .contributions import concat_csr
from .delivery import batch_deliver
from .propagation import batch_propagate

__all__ = [
    "backends",
    "contributions",
    "delivery",
    "likelihood",
    "propagation",
    "batch_contributions",
    "batch_deliver",
    "batch_likelihood",
    "batch_propagate",
    "batch_propagate_ragged",
    "concat_csr",
    "kernel_backend_info",
    "link_uniform_many",
    "set_kernel_backend",
    "use_kernel_backend",
    "warm_up_kernels",
]


def batch_contributions(distances, offsets=None, *, d_min=1e-3):
    """Dispatching :func:`repro.kernels.contributions.batch_contributions`."""
    return _DISPATCH["batch_contributions"](distances, offsets, d_min=d_min)


def batch_likelihood(holder_positions, lam, sensor_positions, zs, noise_std):
    """Dispatching :func:`repro.kernels.likelihood.batch_likelihood`."""
    return _DISPATCH["batch_likelihood"](
        holder_positions, lam, sensor_positions, zs, noise_std
    )


def batch_propagate_ragged(
    predicted,
    weights,
    candidate_ids,
    candidate_positions,
    candidate_offsets,
    *,
    area_radius,
    record_threshold,
    max_recorders=None,
    keep_mask=None,
):
    """Dispatching :func:`repro.kernels.propagation.batch_propagate_ragged`."""
    return _DISPATCH["batch_propagate_ragged"](
        predicted,
        weights,
        candidate_ids,
        candidate_positions,
        candidate_offsets,
        area_radius=area_radius,
        record_threshold=record_threshold,
        max_recorders=max_recorders,
        keep_mask=keep_mask,
    )


def link_uniform_many(seed, tag, sender, receivers, iteration, nonces):
    """Dispatching :func:`repro.kernels.delivery.link_uniform_many`."""
    return _DISPATCH["link_uniform_many"](
        seed, tag, sender, receivers, iteration, nonces
    )
