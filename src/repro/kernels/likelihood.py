"""Batched likelihood evaluation: all sensors against all holders/particles.

Two call shapes cover every likelihood hot path in the simulator:

* :func:`batch_likelihood` — the distributed trackers' node-hosted form:
  an ``(n_holders, n_sensors)`` matrix of bearing *log-kernels* with the
  discretization-aware sigma inflation of CDPF/SDPF (paper §IV-B): each
  entry replicates ``quantization_sigma`` + ``BearingMeasurement.
  log_kernel`` for one (holder, sensor) pair, bit for bit.
* :func:`batch_bearing_log_likelihood` — the centralized form used by the
  SIR update (CPF / DPF leaders): an ``(n_obs, n_particles)`` matrix of
  full Gaussian bearing log-likelihoods; summing its rows sequentially is
  bit-identical to the per-observation accumulation it replaces.

Plus the vectorized bearing quantizer/dequantizer of the compression DPF.

All formulas are elementwise transcriptions of the scalar code (see
``models/measurement.py`` and ``core/cdpf.py``); elementwise numpy ops are
bitwise independent of batch shape, which is what keeps the golden
differential suite byte-identical after the rewiring.
"""

from __future__ import annotations

import numpy as np

from .geometry import norm2d_many

__all__ = [
    "wrap_angle_many",
    "batch_likelihood",
    "batch_bearing_log_likelihood",
    "quantize_bearings",
    "dequantize_bearings",
    "fused_bearing",
]

_LOG_2PI = float(np.log(2.0 * np.pi))


def wrap_angle_many(theta: np.ndarray) -> np.ndarray:
    """Reduce angles to (-pi, pi] (same convention as models.wrap_angle)."""
    wrapped = np.mod(theta + np.pi, 2.0 * np.pi) - np.pi
    return np.where(wrapped == -np.pi, np.pi, wrapped)


def batch_likelihood(
    holder_positions: np.ndarray,
    lam: np.ndarray,
    sensor_positions: np.ndarray,
    zs: np.ndarray,
    noise_std: float,
) -> np.ndarray:
    """Bearing log-kernels of every sensor reading at every particle holder.

    Parameters
    ----------
    holder_positions:
        ``(n, 2)`` positions of the node-hosted particles.
    lam:
        ``(n,)`` per-holder local node density (``(degree + 1) / (pi r_c^2)``),
        driving the discretization sigma ``arctan(h / max(d, h))`` with
        ``h = 0.5 / sqrt(lam)``.
    sensor_positions:
        ``(m, 2)`` reference points of the measurements (the sensing nodes).
    zs:
        ``(m,)`` measured bearings.
    noise_std:
        The measurement model's sigma_n; per-entry it is inflated to
        ``hypot(noise_std, sigma_quant)`` exactly as the scalar path does.

    Returns an ``(n, m)`` matrix; entry ``[i, j]`` equals the scalar chain
    ``quantization_sigma`` -> ``log_kernel`` evaluated for holder ``i`` and
    sensor ``j`` (flat 0.0 where holder and sensor coincide, the kernel's
    undefined-bearing guard).

    A leading batch axis stacks many independent cells into one call:
    ``(B, n, 2)`` holders + ``(B, n)`` lam + ``(B, m, 2)`` sensors +
    ``(B, m)`` bearings return ``(B, n, m)``, each slice bit-identical to
    its own 2-D call (every op below is elementwise, hence independent of
    batch shape).  Ragged cells pad with ``lam=1`` and coincident
    positions — padded entries land in the ``r2 < 1e-12`` guard and are
    finite, so callers may simply never read them.
    """
    hp = np.asarray(holder_positions, dtype=np.float64)
    sp = np.asarray(sensor_positions, dtype=np.float64)
    zs = np.asarray(zs, dtype=np.float64)
    lam = np.asarray(lam, dtype=np.float64)
    dx = hp[..., 0][..., :, None] - sp[..., 0][..., None, :]
    dy = hp[..., 1][..., :, None] - sp[..., 1][..., None, :]
    # two squared distances on purpose: the scalar chain measures d_sr with
    # np.linalg.norm (FMA-contracted dot) but guards the flat factor with the
    # kernel's own plain mul-add r2 — replicate both bit patterns
    r2 = dx * dx + dy * dy
    d = norm2d_many(dx, dy)
    h = (0.5 / np.sqrt(lam))[..., :, None]
    sigma_quant = np.where(d > 0, np.arctan(h / np.maximum(d, h)), 0.0)
    sigma_eff = np.hypot(noise_std, sigma_quant)
    predicted = np.arctan2(dy, dx)
    residual = wrap_angle_many(zs[..., None, :] - predicted)
    out = -0.5 * (residual / sigma_eff) ** 2
    return np.where(r2 < 1e-12, 0.0, out)


def batch_bearing_log_likelihood(
    positions: np.ndarray,
    zs: np.ndarray,
    refs: np.ndarray,
    sigmas: np.ndarray,
) -> np.ndarray:
    """Full Gaussian bearing log-likelihoods: (n_obs, n_particles).

    Row ``i`` equals ``BearingMeasurement(noise_std=sigmas[i]).
    log_likelihood(states, zs[i], refs[i])`` — the centralized SIR update
    sums these rows sequentially, preserving its reduction order.
    """
    positions = np.asarray(positions, dtype=np.float64)
    refs = np.asarray(refs, dtype=np.float64)
    zs = np.asarray(zs, dtype=np.float64)
    sigmas = np.asarray(sigmas, dtype=np.float64)
    dx = positions[None, :, 0] - refs[:, 0:1]
    dy = positions[None, :, 1] - refs[:, 1:2]
    predicted = np.arctan2(dy, dx)
    residual = wrap_angle_many(zs[:, None] - predicted)
    return (
        -0.5 * (residual / sigmas[:, None]) ** 2
        - np.log(sigmas)[:, None]
        - 0.5 * _LOG_2PI
    )


def quantize_bearings(zs: np.ndarray, bits: int) -> np.ndarray:
    """Uniformly quantize bearings in (-pi, pi] to b-bit codes (vectorized)."""
    if bits <= 0:
        raise ValueError(f"bits must be positive, got {bits}")
    levels = 2**bits
    frac = (np.asarray(zs, dtype=np.float64) + np.pi) / (2 * np.pi)
    codes = np.floor(frac * levels).astype(np.int64)
    return np.clip(codes, 0, levels - 1)


def dequantize_bearings(codes: np.ndarray, bits: int) -> np.ndarray:
    """Centers of the codes' quantization cells (vectorized)."""
    levels = 2**bits
    codes = np.asarray(codes)
    if np.any((codes < 0) | (codes >= levels)):
        raise ValueError(f"codes out of range for {bits} bits")
    return (codes + 0.5) / levels * 2 * np.pi - np.pi


def fused_bearing(values: np.ndarray, noise_std: float, bias_std: float):
    """Sufficient statistic of M same-quantity bearings: circular mean + sigma.

    ``sigma_eff^2 = sigma_n^2 / M + sigma_b^2`` — per-sensor noise averages
    down, the common-mode bias does not.
    """
    values = np.asarray(values, dtype=np.float64)
    mean = float(np.arctan2(np.mean(np.sin(values)), np.mean(np.cos(values))))
    sigma_eff = float(np.sqrt(noise_std**2 / values.size + bias_std**2))
    return mean, sigma_eff
