"""Batched recorder selection + weight division over many broadcasts.

One propagation round evaluates, for every broadcast particle, which
candidate nodes record it (linear probability model over the predicted
area), splits the particle's weight across those recorders, and assigns
each recorded share a velocity.  The scalar path does this once per
broadcast via ``core.propagation.select_recorders`` + ``division_shares``;
this kernel evaluates the whole round against one shared candidate array.

Bit-identity contract (pinned by ``tests/kernels/test_propagation_kernel.py``
and the golden differential suite):

* distances use the scalar form ``sqrt((pos - pred) ** 2 summed over x, y)``
  — elementwise ``dx * dx + dy * dy`` is bitwise identical to the per-row
  ``np.sum(d ** 2, axis=1)`` it replaces;
* the top-k cut uses the same ``np.lexsort((ids, -p))`` tie-break, whose
  selected *set* is independent of candidate order because ids are unique;
* each broadcast's share normalizer ``p.sum()`` is taken over a fresh
  contiguous id-sorted gather, reproducing the pairwise reduction of the
  scalar ``division_shares`` call exactly.
"""

from __future__ import annotations

import numpy as np

__all__ = ["batch_propagate", "batch_propagate_ragged", "batch_implied_velocities"]


def batch_propagate(
    predicted: np.ndarray,
    weights: np.ndarray,
    candidate_ids: np.ndarray,
    candidate_positions: np.ndarray,
    *,
    area_radius: float,
    record_threshold: float,
    max_recorders: int | None = None,
    keep_masks: np.ndarray | None = None,
) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Recorders and weight shares for a batch of broadcast particles.

    Parameters
    ----------
    predicted:
        ``(B, 2)`` predicted positions, one per broadcast particle.
    weights:
        ``(B,)`` particle weights to divide.
    candidate_ids / candidate_positions:
        ``(C,)`` ids and ``(C, 2)`` positions of the shared candidate set
        (e.g. the predicted area's spatial-query result).
    area_radius / record_threshold / max_recorders:
        The ``PropagationConfig`` geometry knobs.
    keep_masks:
        Optional ``(B, C)`` bool eligibility (range / availability / lost-copy
        filters composed by the caller); ``None`` keeps every candidate.

    Returns a list of ``B`` tuples ``(sel, probs, shares)``: ``sel`` indexes
    the candidate arrays in ascending-id order, ``probs`` are the linear
    probabilities and ``shares`` the divided weights of those recorders.
    A broadcast with no recorders yields three empty arrays.
    """
    predicted = np.asarray(predicted, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    ids = np.asarray(candidate_ids, dtype=np.intp)
    pos = np.asarray(candidate_positions, dtype=np.float64)
    n_b = predicted.shape[0]
    empty = (
        np.zeros(0, dtype=np.intp),
        np.zeros(0, dtype=np.float64),
        np.zeros(0, dtype=np.float64),
    )
    if ids.size == 0:
        return [empty] * n_b

    # pre-sort candidates by id once: the per-broadcast selections below
    # then come out id-ascending for free.  Bitwise neutral: probabilities
    # are elementwise per candidate, and the id-sorted prob sequence each
    # broadcast normalizes over is identical either way.
    id_order = np.argsort(ids)
    ids_s = ids[id_order]
    pos_s = pos[id_order]

    dx = pos_s[None, :, 0] - predicted[:, 0:1]
    dy = pos_s[None, :, 1] - predicted[:, 1:2]
    d = np.sqrt(dx * dx + dy * dy)
    p = np.maximum(0.0, 1.0 - d / area_radius)
    keep = p > max(record_threshold, 0.0)
    if keep_masks is not None:
        keep &= np.asarray(keep_masks)[:, id_order]

    # one global nonzero pass replaces B flatnonzero calls; rows come out
    # sorted, so each broadcast's selection is a contiguous slice of cols
    cols = np.nonzero(keep)[1]
    bounds = np.concatenate([[0], np.cumsum(keep.sum(axis=1))])

    out: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    for b in range(n_b):
        sel = cols[bounds[b] : bounds[b + 1]]
        if sel.size == 0:
            out.append(empty)
            continue
        probs = p[b, sel]
        if max_recorders is not None and sel.size > max_recorders:
            # top-k by probability, ties broken by id — the selected set is
            # independent of candidate order because (p, id) keys are unique
            order = np.lexsort((ids_s[sel], -probs))[:max_recorders]
            order.sort()  # back to ascending ids (sel is id-sorted already)
            sel, probs = sel[order], probs[order]
        shares = weights[b] * (probs / probs.sum())
        out.append((id_order[sel], probs, shares))
    return out


def batch_propagate_ragged(
    predicted: np.ndarray,
    weights: np.ndarray,
    candidate_ids: np.ndarray,
    candidate_positions: np.ndarray,
    candidate_offsets: np.ndarray,
    *,
    area_radius: float,
    record_threshold: float,
    max_recorders: int | None = None,
    keep_mask: np.ndarray | None = None,
) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """:func:`batch_propagate` with a *per-broadcast* candidate set (CSR).

    The cross-cell batch axis: broadcasts from many cells — each with its
    own spatial-query result — concatenate into one flat candidate array
    delimited by ``candidate_offsets`` (``B + 1`` entries; broadcast ``b``
    owns ``candidate_ids[offsets[b]:offsets[b + 1]]``), and the whole round
    evaluates in one distance/probability pass.  ``keep_mask`` is the flat
    optional eligibility aligned with ``candidate_ids``.

    Per broadcast the returned ``(sel, probs, shares)`` tuple is
    bit-identical to the single-broadcast ``batch_propagate`` call over
    that broadcast's own slice, with ``sel`` indexing the slice: the
    distance/probability chain is elementwise, the per-broadcast id sort
    reproduces the shared-candidate pre-sort, and each share normalizer is
    a pairwise ``.sum()`` over the same id-ascending gather.
    """
    predicted = np.asarray(predicted, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    ids = np.asarray(candidate_ids, dtype=np.intp)
    pos = np.asarray(candidate_positions, dtype=np.float64)
    offsets = np.asarray(candidate_offsets, dtype=np.intp)
    n_b = predicted.shape[0]
    empty = (
        np.zeros(0, dtype=np.intp),
        np.zeros(0, dtype=np.float64),
        np.zeros(0, dtype=np.float64),
    )
    if ids.size == 0:
        return [empty] * n_b

    counts = np.diff(offsets)
    group = np.repeat(np.arange(n_b, dtype=np.intp), counts)
    # stable (group, id) sort == an independent id pre-sort inside every
    # broadcast's own slice; group labels are unmoved by it
    order = np.lexsort((ids, group))
    ids_s = ids[order]
    pos_s = pos[order]
    pred_rep = predicted[group]
    dx = pos_s[:, 0] - pred_rep[:, 0]
    dy = pos_s[:, 1] - pred_rep[:, 1]
    d = np.sqrt(dx * dx + dy * dy)
    p = np.maximum(0.0, 1.0 - d / area_radius)
    keep = p > max(record_threshold, 0.0)
    if keep_mask is not None:
        keep &= np.asarray(keep_mask)[order]

    sel_flat = np.nonzero(keep)[0]
    bounds = np.searchsorted(sel_flat, offsets)
    out: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    for b in range(n_b):
        sel = sel_flat[bounds[b] : bounds[b + 1]]
        if sel.size == 0:
            out.append(empty)
            continue
        probs = p[sel]
        if max_recorders is not None and sel.size > max_recorders:
            top = np.lexsort((ids_s[sel], -probs))[:max_recorders]
            top.sort()  # back to ascending ids (sel is id-sorted already)
            sel, probs = sel[top], probs[top]
        shares = weights[b] * (probs / probs.sum())
        out.append((order[sel] - offsets[b], probs, shares))
    return out


def batch_implied_velocities(
    sender_position: np.ndarray,
    recorder_positions: np.ndarray,
    sender_velocity: np.ndarray,
    dt: float,
    mode: str,
    alpha: float = 0.5,
    track_velocity: np.ndarray | None = None,
) -> np.ndarray:
    """Recorded-particle velocities for all of one broadcast's recorders.

    Row ``i`` equals ``core.propagation.implied_velocity(sender_position,
    recorder_positions[i], ...)`` — every mode is an elementwise expression,
    so batching over recorders is bitwise free.
    """
    rec = np.atleast_2d(np.asarray(recorder_positions, dtype=np.float64))
    n = rec.shape[0]
    sender_velocity = np.asarray(sender_velocity, dtype=np.float64)
    if mode == "track":
        v = sender_velocity if track_velocity is None else np.asarray(
            track_velocity, dtype=np.float64
        )
        return np.tile(v, (n, 1))
    if mode == "inherit":
        return np.tile(sender_velocity, (n, 1))
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")
    disp = (rec - np.asarray(sender_position, dtype=np.float64)) / dt
    if mode == "displacement":
        return disp
    if mode == "blend":
        return (1.0 - alpha) * sender_velocity + alpha * disp
    raise ValueError(f"unknown velocity mode {mode!r}")
