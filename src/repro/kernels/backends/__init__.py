"""Pluggable kernel backends behind the batch-axis kernel contract.

The four contract kernels — :func:`~repro.kernels.contributions.
batch_contributions`, :func:`~repro.kernels.likelihood.batch_likelihood`,
:func:`~repro.kernels.propagation.batch_propagate_ragged` and
:func:`~repro.kernels.delivery.link_uniform_many` — are dispatched through
this package instead of being bound to their numpy reference at import
time.  Two backends register here:

* ``"numpy"`` — the reference implementations, the default, and the
  definition of correct: every other backend must reproduce them bit for
  bit (same float ops, same order, same pairwise-reduction trees).
* ``"numba"`` — ``@njit``-compiled replicas of the kernels whose float
  semantics can be preserved exactly (:mod:`~repro.kernels.backends.
  numba_backend`); kernels where bit-exactness is unattainable under a JIT
  (``batch_likelihood`` — numpy 2's SIMD transcendentals differ from libm
  in the last bit) have no JIT variant and stay on numpy.

Selection
---------
Three levels, from widest to narrowest scope:

* ``REPRO_KERNEL_BACKEND`` (environment) — pins the whole process, e.g. a
  deployment opting all service workers in.  The pin wins over *run-scoped*
  requests (a config or ``RunOptions`` asking for something else falls back
  with a warn-once ``env-override`` reason) but loses to an explicit
  :func:`set_kernel_backend` call, so tests and tools keep full control.
* :func:`set_kernel_backend` — explicit process-level selection.
* :func:`use_kernel_backend` — a context manager scoping one run (this is
  what ``RunOptions.kernel_backend`` / ``ScenarioConfig.kernel_backend``
  travel through).

Resolution is *eager*: every switch rebuilds the active per-kernel table
once, so the hot path pays exactly one dict lookup per call.  When a
requested backend cannot serve a kernel, dispatch falls back to numpy for
that kernel and warns once per (backend, kernel, reason) with a structured
reason — ``missing-dependency`` (e.g. numba not installed),
``no-jit-variant`` (documented holdout) or ``env-override``.
:func:`kernel_backend_info` exposes the live map for ``RunSummary`` rows
and the service's ``/metrics``.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Mapping

__all__ = [
    "DISPATCHED_KERNELS",
    "ENV_VAR",
    "KernelBackend",
    "KernelBackendFallbackWarning",
    "active_kernels",
    "available_backends",
    "kernel_backend_info",
    "kernel_backend_names",
    "register_backend",
    "reset_kernel_backend",
    "set_kernel_backend",
    "use_kernel_backend",
    "warm_up_kernels",
]

#: the contract kernels that route through the dispatcher; everything else
#: in :mod:`repro.kernels` stays a direct numpy binding
DISPATCHED_KERNELS = (
    "batch_contributions",
    "batch_likelihood",
    "batch_propagate_ragged",
    "link_uniform_many",
)

#: process-wide backend pin honored at import and on every re-resolution
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: structured fallback reasons (the warn-once taxonomy)
REASON_MISSING_DEPENDENCY = "missing-dependency"
REASON_NO_JIT_VARIANT = "no-jit-variant"
REASON_ENV_OVERRIDE = "env-override"
REASON_UNKNOWN_BACKEND = "unknown-backend"


class KernelBackendFallbackWarning(UserWarning):
    """A requested kernel backend fell back to numpy for >= 1 kernel."""


@dataclass(frozen=True)
class KernelBackend:
    """One registered backend: a named, partial kernel table.

    ``kernels`` maps contract-kernel names to callables with the reference
    signatures; a backend may claim any subset (missing names fall back to
    numpy per kernel).  ``availability`` reports whether the backend can
    run at all — ``(False, detail)`` routes every kernel to numpy with a
    ``missing-dependency`` warn-once.  ``warm_up`` pre-compiles/primes the
    backend (called once per worker process at pool/service spawn).
    """

    name: str
    kernels: Mapping[str, Callable]
    availability: Callable[[], tuple[bool, str | None]] = field(
        default=lambda: (True, None)
    )
    warm_up: Callable[[], None] = field(default=lambda: None)


_REGISTRY: dict[str, KernelBackend] = {}

# resolved state: _ACTIVE is the hot-path table (one dict lookup per kernel
# call); _KERNEL_INFO mirrors it with provenance for kernel_backend_info()
_ACTIVE: dict[str, Callable] = {}
_KERNEL_INFO: dict[str, dict] = {}
_STATE = {"requested": "numpy", "source": "default"}
_API_SELECTION: str | None = None
_RUN_SELECTION: str | None = None
_WARNED: set[tuple[str, str, str]] = set()


def register_backend(backend: KernelBackend) -> None:
    """Register (or replace) a backend and re-resolve the active table."""
    _REGISTRY[backend.name] = backend
    _rebind()


def kernel_backend_names() -> tuple[str, ...]:
    """The registered backend names, reference backend first."""
    names = sorted(_REGISTRY)
    if "numpy" in names:
        names.remove("numpy")
        names.insert(0, "numpy")
    return tuple(names)


def available_backends() -> dict[str, dict]:
    """Availability of every registered backend (name -> probe result)."""
    out = {}
    for name, backend in sorted(_REGISTRY.items()):
        ok, detail = backend.availability()
        out[name] = {"available": bool(ok)}
        if detail:
            out[name]["detail"] = detail
    return out


def _warn_once(backend: str, kernel: str, reason: str, detail: str) -> None:
    key = (backend, kernel, reason)
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(
        f"kernel backend {backend!r} cannot serve {kernel!r} "
        f"[reason={reason}]: {detail}; falling back to numpy",
        KernelBackendFallbackWarning,
        stacklevel=3,
    )


def _env_request() -> str | None:
    value = os.environ.get(ENV_VAR)
    if not value:
        return None
    if value not in _REGISTRY:
        for kernel in DISPATCHED_KERNELS:
            _warn_once(
                value,
                kernel,
                REASON_UNKNOWN_BACKEND,
                f"{ENV_VAR}={value!r} names no registered backend "
                f"(have {sorted(_REGISTRY)})",
            )
        return None
    return value


def _rebind() -> None:
    """Re-resolve the active per-kernel table from the current selections."""
    env = _env_request()
    requested, source = "numpy", "default"
    if env is not None:
        requested, source = env, "env"
    if _RUN_SELECTION is not None:
        if env is not None and _RUN_SELECTION != env:
            # the deployment-level pin wins over run-scoped requests
            for kernel in DISPATCHED_KERNELS:
                _warn_once(
                    _RUN_SELECTION,
                    kernel,
                    REASON_ENV_OVERRIDE,
                    f"{ENV_VAR}={env!r} pins this process",
                )
        else:
            requested, source = _RUN_SELECTION, "run"
    if _API_SELECTION is not None:
        requested, source = _API_SELECTION, "api"

    _STATE["requested"] = requested
    _STATE["source"] = source
    reference = _REGISTRY["numpy"]
    backend = _REGISTRY[requested]
    ok, detail = (True, None) if requested == "numpy" else backend.availability()
    for kernel in DISPATCHED_KERNELS:
        impl = backend.kernels.get(kernel)
        if requested == "numpy":
            pass  # the reference serves everything by definition
        elif not ok:
            _warn_once(
                requested,
                kernel,
                REASON_MISSING_DEPENDENCY,
                detail or "backend unavailable",
            )
            impl = None
        elif impl is None:
            _warn_once(
                requested,
                kernel,
                REASON_NO_JIT_VARIANT,
                "kernel is a documented numpy-only holdout for this backend",
            )
        if impl is None:
            _ACTIVE[kernel] = reference.kernels[kernel]
            info = {"backend": "numpy"}
            if requested != "numpy":
                info["fallback"] = {
                    "requested": requested,
                    "reason": (
                        REASON_MISSING_DEPENDENCY if not ok else REASON_NO_JIT_VARIANT
                    ),
                }
                if not ok and detail:
                    info["fallback"]["detail"] = detail
        else:
            _ACTIVE[kernel] = impl
            info = {"backend": requested}
        _KERNEL_INFO[kernel] = info


def _validate(name: str) -> str:
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown kernel backend {name!r}; registered: "
            f"{sorted(_REGISTRY)}"
        )
    return name


def set_kernel_backend(name: str | None) -> str | None:
    """Select the process-level kernel backend; returns the previous selection.

    ``name=None`` clears the explicit selection, dropping back to the
    ``REPRO_KERNEL_BACKEND`` environment pin (if set) or the numpy default.
    An explicit selection wins over the environment pin — this is the
    programmer's override; the env var is the deployment's.
    """
    global _API_SELECTION
    if name is not None:
        _validate(name)
    previous = _API_SELECTION
    _API_SELECTION = name
    _rebind()
    return previous


@contextmanager
def use_kernel_backend(name: str):
    """Scope a run-level backend request to a ``with`` block.

    This is the channel ``RunOptions.kernel_backend`` and the config
    schema's ``kernel_backend`` field travel through.  A process pinned via
    ``REPRO_KERNEL_BACKEND`` overrides the request (warn-once,
    ``env-override``); an explicit :func:`set_kernel_backend` selection
    also takes precedence.  Nesting restores the outer request on exit.
    """
    global _RUN_SELECTION
    _validate(name)
    previous = _RUN_SELECTION
    _RUN_SELECTION = name
    _rebind()
    try:
        yield
    finally:
        _RUN_SELECTION = previous
        _rebind()


def active_kernels() -> dict[str, Callable]:
    """The live dispatch table (kernel name -> serving callable)."""
    return dict(_ACTIVE)


def kernel_backend_info() -> dict:
    """The resolved backend state: requested, source, per-kernel map.

    The shape surfaced in ``RunSummary`` and the service's ``/metrics``::

        {"requested": "numba", "source": "env",
         "kernels": {"batch_contributions": {"backend": "numba"},
                     "batch_likelihood": {"backend": "numpy",
                                          "fallback": {...}}, ...},
         "backends": {"numpy": {"available": True}, ...}}
    """
    return {
        "requested": _STATE["requested"],
        "source": _STATE["source"],
        "kernels": {k: dict(v) for k, v in _KERNEL_INFO.items()},
        "backends": available_backends(),
    }


def warm_up_kernels() -> None:
    """Prime the backend serving >= 1 kernel (pre-compile JIT variants).

    Called once per worker process at pool/service spawn so first-call
    compilation latency never pollutes bench numbers or service p95.
    A no-op for the numpy reference.
    """
    serving = {info["backend"] for info in _KERNEL_INFO.values()}
    for name in serving:
        _REGISTRY[name].warm_up()


def reset_kernel_backend() -> None:
    """Drop every selection and the warn-once registry; re-resolve.

    Test helper: returns the dispatcher to a pristine import-time state
    (modulo the current environment, which is re-read).
    """
    global _API_SELECTION, _RUN_SELECTION
    _API_SELECTION = None
    _RUN_SELECTION = None
    _WARNED.clear()
    _rebind()


# -- backend registration (import order matters: numpy first, it is the
#    fallback target every resolution references) ---------------------------

from . import numpy_backend as _numpy_backend  # noqa: E402

_REGISTRY["numpy"] = _numpy_backend.BACKEND

from . import numba_backend as _numba_backend  # noqa: E402

_REGISTRY["numba"] = _numba_backend.BACKEND

_rebind()
