"""The numpy reference backend: the definition of bit-exact.

Nothing here is new code — the backend table simply names the reference
implementations the kernel modules have always shipped.  Registering them
as a backend (rather than letting ``repro.kernels.__init__`` bind them at
import) is what makes backend switches after import take effect at every
call site.
"""

from __future__ import annotations

from . import KernelBackend
from ..contributions import batch_contributions
from ..delivery import link_uniform_many
from ..likelihood import batch_likelihood
from ..propagation import batch_propagate_ragged

__all__ = ["BACKEND"]

BACKEND = KernelBackend(
    name="numpy",
    kernels={
        "batch_contributions": batch_contributions,
        "batch_likelihood": batch_likelihood,
        "batch_propagate_ragged": batch_propagate_ragged,
        "link_uniform_many": link_uniform_many,
    },
)
