"""The numba backend: ``@njit``-compiled, bit-exact kernel replicas.

Three of the four contract kernels compile: ``batch_contributions``,
``batch_propagate_ragged`` and ``link_uniform_many`` use only IEEE-exact
operations (add/sub/mul/div/sqrt/compare and pure uint64 arithmetic), so a
scalar transcription reproduces the numpy reference to the last bit — the
per-group reductions re-implement numpy's *pairwise* summation tree
(``_pairwise_sum``: 8-accumulator unrolled blocks up to 128 elements,
recursive halving above) rather than naive accumulation.

``batch_likelihood`` is the documented numpy-only holdout (DESIGN §4k):
numpy 2's SIMD ``arctan``/``arctan2``/``hypot`` loops differ from libm in
the last ulp (measured: ~8% of ``arctan2`` values on this toolchain), so
no JIT transcription can match it bitwise.  Per the bit-exactness contract
the kernel keeps its numpy implementation instead of loosening the gate;
the dispatcher warns once with reason ``no-jit-variant``.

JIT caveats (also in DESIGN §4k):

* ``fastmath`` stays **off** — FMA contraction or reassociation would
  break bit-exactness (and ``norm2d_many``'s emulated-FMA upstream relies
  on strict ordering).
* every wrapper normalizes dtype *and* C-contiguity before entering a
  compiled kernel, so exactly one specialization per kernel ever compiles
  (steady state asserts no recompilation);
* ``cache=True`` persists compilations across processes;
  ``REPRO_KERNEL_JIT_PARALLEL=1`` additionally compiles the ``prange``
  loops parallel (off by default: the paper-grid workloads are too small
  to amortize thread fan-out).
* uint64 arithmetic never mixes with Python int literals (numba would
  promote through float64); all constants are ``np.uint64`` globals.

Without numba installed the module still imports: ``_jit`` degrades to a
no-op so the kernel *bodies* remain plain-Python testable (the equivalence
suite exercises them bitwise either way), while the dispatcher routes
production calls back to numpy with a ``missing-dependency`` warn-once.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = ["BACKEND", "KERNELS", "is_available", "warm_up"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
    from numba import prange

    _NUMBA_ERROR: str | None = None
except ImportError as exc:  # the supported no-numba path
    _numba = None
    prange = range
    _NUMBA_ERROR = f"{type(exc).__name__}: {exc}"

_PARALLEL = os.environ.get("REPRO_KERNEL_JIT_PARALLEL", "0") == "1"


def _jit(fn):
    """``numba.njit`` with the contract-safe options; identity without numba."""
    if _numba is None:
        return fn
    return _numba.njit(cache=True, parallel=_PARALLEL, fastmath=False)(fn)


def is_available() -> tuple[bool, str | None]:
    if _numba is None:
        return False, f"numba is not installed ({_NUMBA_ERROR})"
    return True, None


# ---------------------------------------------------------------------------
# numpy's pairwise summation, transcribed
# ---------------------------------------------------------------------------


@_jit
def _pairwise_sum(values, lo, n):
    """``values[lo:lo + n].sum()`` with numpy's exact reduction tree.

    Transcribed from numpy's ``pairwise_sum_DOUBLE``: sequential below 8
    elements; an 8-accumulator unrolled block with the fixed combine order
    ``((r0+r1)+(r2+r3)) + ((r4+r5)+(r6+r7))`` up to 128; recursive halving
    (first half rounded down to a multiple of 8) above.  Bit-identical to a
    contiguous float64 ``.sum()`` for every length.
    """
    if n < 8:
        acc = 0.0
        for i in range(n):
            acc += values[lo + i]
        return acc
    if n <= 128:
        r0 = values[lo]
        r1 = values[lo + 1]
        r2 = values[lo + 2]
        r3 = values[lo + 3]
        r4 = values[lo + 4]
        r5 = values[lo + 5]
        r6 = values[lo + 6]
        r7 = values[lo + 7]
        i = 8
        while i < n - (n % 8):
            r0 += values[lo + i]
            r1 += values[lo + i + 1]
            r2 += values[lo + i + 2]
            r3 += values[lo + i + 3]
            r4 += values[lo + i + 4]
            r5 += values[lo + i + 5]
            r6 += values[lo + i + 6]
            r7 += values[lo + i + 7]
            i += 8
        acc = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
        while i < n:
            acc += values[lo + i]
            i += 1
        return acc
    half = n // 2
    half -= half % 8
    return _pairwise_sum(values, lo, half) + _pairwise_sum(
        values, lo + half, n - half
    )


# ---------------------------------------------------------------------------
# batch_contributions
# ---------------------------------------------------------------------------


@_jit
def _contributions_kernel(distances, offsets, d_min, out):
    for g in prange(offsets.shape[0] - 1):
        lo = offsets[g]
        hi = offsets[g + 1]
        for i in range(lo, hi):
            d = distances[i]
            if d < d_min:
                d = d_min
            out[i] = 1.0 / d
        total = _pairwise_sum(out, lo, hi - lo)
        for i in range(lo, hi):
            out[i] = out[i] / total


def batch_contributions(distances, offsets=None, *, d_min=1e-3):
    """JIT replica of :func:`repro.kernels.contributions.batch_contributions`."""
    distances = np.ascontiguousarray(distances, dtype=np.float64)
    if offsets is None:
        offsets = np.array([0, distances.shape[0]], dtype=np.int64)
    else:
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
    out = np.empty_like(distances)
    _contributions_kernel(distances, offsets, float(d_min), out)
    return out


# ---------------------------------------------------------------------------
# batch_propagate_ragged
# ---------------------------------------------------------------------------


@_jit
def _ragged_probs_kernel(pos_s, predicted, group, area_radius, threshold,
                         mask_s, use_mask, p, keep):
    for i in prange(pos_s.shape[0]):
        b = group[i]
        dx = pos_s[i, 0] - predicted[b, 0]
        dy = pos_s[i, 1] - predicted[b, 1]
        d = np.sqrt(dx * dx + dy * dy)
        v = 1.0 - d / area_radius
        pv = v if v > 0.0 else 0.0
        p[i] = pv
        kept = pv > threshold
        if use_mask and mask_s[i] == 0:
            kept = False
        keep[i] = 1 if kept else 0


@_jit
def _ragged_counts_kernel(keep, offsets, max_recorders, counts):
    for b in prange(offsets.shape[0] - 1):
        c = 0
        for i in range(offsets[b], offsets[b + 1]):
            c += keep[i]
        if 0 <= max_recorders < c:
            c = max_recorders
        counts[b] = c


@_jit
def _ragged_fill_kernel(p, keep, ids_s, weights, offsets, out_offsets,
                        sel_out, probs_out, shares_out):
    for b in prange(offsets.shape[0] - 1):
        lo = offsets[b]
        hi = offsets[b + 1]
        o = out_offsets[b]
        n_sel = out_offsets[b + 1] - o
        if n_sel == 0:
            continue
        c = 0
        for i in range(lo, hi):
            c += keep[i]
        if c > n_sel:
            # top-k under (probability desc, id asc) — the same total order
            # as the reference's stable lexsort((ids, -p))[:k]; the k-pass
            # strict-improvement scan keeps the earliest of exact key ties,
            # matching mergesort stability.  The survivors then emit in
            # position order == ascending id (the slice is id-sorted).
            taken = np.zeros(hi - lo, dtype=np.uint8)
            for _ in range(n_sel):
                best = -1
                best_p = 0.0
                best_id = 0
                for i in range(lo, hi):
                    if keep[i] == 0 or taken[i - lo] == 1:
                        continue
                    if (
                        best < 0
                        or p[i] > best_p
                        or (p[i] == best_p and ids_s[i] < best_id)
                    ):
                        best = i
                        best_p = p[i]
                        best_id = ids_s[i]
                taken[best - lo] = 1
            j = o
            for i in range(lo, hi):
                if keep[i] == 1 and taken[i - lo] == 1:
                    sel_out[j] = i
                    probs_out[j] = p[i]
                    j += 1
        else:
            j = o
            for i in range(lo, hi):
                if keep[i] == 1:
                    sel_out[j] = i
                    probs_out[j] = p[i]
                    j += 1
        total = _pairwise_sum(probs_out, o, n_sel)
        w = weights[b]
        for j in range(o, o + n_sel):
            shares_out[j] = w * (probs_out[j] / total)


def batch_propagate_ragged(
    predicted,
    weights,
    candidate_ids,
    candidate_positions,
    candidate_offsets,
    *,
    area_radius,
    record_threshold,
    max_recorders=None,
    keep_mask=None,
):
    """JIT replica of :func:`repro.kernels.propagation.batch_propagate_ragged`.

    The stable ``(group, id)`` pre-sort stays in numpy (an exact index
    permutation); the distance/probability pass, per-broadcast selection,
    top-k cut and pairwise share normalization run compiled.
    """
    predicted = np.ascontiguousarray(predicted, dtype=np.float64)
    weights = np.ascontiguousarray(weights, dtype=np.float64)
    ids = np.asarray(candidate_ids, dtype=np.intp)
    pos = np.asarray(candidate_positions, dtype=np.float64)
    offsets = np.asarray(candidate_offsets, dtype=np.intp)
    n_b = predicted.shape[0]
    empty = (
        np.zeros(0, dtype=np.intp),
        np.zeros(0, dtype=np.float64),
        np.zeros(0, dtype=np.float64),
    )
    if ids.size == 0:
        return [empty] * n_b

    counts = np.diff(offsets)
    group = np.repeat(np.arange(n_b, dtype=np.intp), counts)
    order = np.lexsort((ids, group))
    ids_s = np.ascontiguousarray(ids[order], dtype=np.int64)
    pos_s = np.ascontiguousarray(pos[order])
    if keep_mask is not None:
        mask_s = np.ascontiguousarray(
            np.asarray(keep_mask)[order], dtype=np.uint8
        )
        use_mask = True
    else:
        mask_s = np.zeros(0, dtype=np.uint8)
        use_mask = False

    p = np.empty(ids_s.shape[0], dtype=np.float64)
    keep = np.empty(ids_s.shape[0], dtype=np.int64)
    offsets64 = np.ascontiguousarray(offsets, dtype=np.int64)
    group64 = np.ascontiguousarray(group, dtype=np.int64)
    _ragged_probs_kernel(
        pos_s, predicted, group64, float(area_radius),
        max(float(record_threshold), 0.0), mask_s, use_mask, p, keep,
    )
    cap = -1 if max_recorders is None else int(max_recorders)
    counts_out = np.empty(n_b, dtype=np.int64)
    _ragged_counts_kernel(keep, offsets64, cap, counts_out)
    out_offsets = np.zeros(n_b + 1, dtype=np.int64)
    np.cumsum(counts_out, out=out_offsets[1:])
    total = int(out_offsets[-1])
    sel_out = np.empty(total, dtype=np.int64)
    probs_out = np.empty(total, dtype=np.float64)
    shares_out = np.empty(total, dtype=np.float64)
    _ragged_fill_kernel(
        p, keep, ids_s, weights, offsets64, out_offsets,
        sel_out, probs_out, shares_out,
    )

    # map sorted-domain flat indices back to slice-relative candidate indices
    sel_rel = order[sel_out] - np.repeat(offsets[:-1], counts_out)
    out: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    for b in range(n_b):
        lo = int(out_offsets[b])
        hi = int(out_offsets[b + 1])
        if lo == hi:
            out.append(empty)
            continue
        out.append((sel_rel[lo:hi], probs_out[lo:hi], shares_out[lo:hi]))
    return out


# ---------------------------------------------------------------------------
# link_uniform_many: SeedSequence -> PCG64 -> random(), scalar per copy
# ---------------------------------------------------------------------------

_M32 = np.uint64(0xFFFFFFFF)
_INIT_A = np.uint64(0x43B0D7E5)
_MULT_A = np.uint64(0x931E8875)
_INIT_B = np.uint64(0x8B51F9DD)
_MULT_B = np.uint64(0x58F38DED)
_MIX_MULT_L = np.uint64(0xCA01F9DD)
_MIX_MULT_R = np.uint64(0x4973F715)
_XSHIFT = np.uint64(16)
_SHIFT1 = np.uint64(1)
_SHIFT11 = np.uint64(11)
_SHIFT32 = np.uint64(32)
_SHIFT58 = np.uint64(58)
_SHIFT63 = np.uint64(63)
_U64_0 = np.uint64(0)
_U64_1 = np.uint64(1)
_U64_63 = np.uint64(63)
_U64_64 = np.uint64(64)
_PCG_MULT_HI = np.uint64(2549297995355413924)
_PCG_MULT_LO = np.uint64(4865540595714422341)
_RECIP_2_53 = 1.0 / 9007199254740992.0


@_jit
def _hashmix(value, hash_const):
    value = (value ^ hash_const) & _M32
    hash_const = (hash_const * _MULT_A) & _M32
    value = (value * hash_const) & _M32
    value = (value ^ (value >> _XSHIFT)) & _M32
    return value, hash_const


@_jit
def _mix(x, y):
    result = ((x * _MIX_MULT_L) - (y * _MIX_MULT_R)) & _M32
    return (result ^ (result >> _XSHIFT)) & _M32


@_jit
def _mul_64_64(a, b):
    a_lo = a & _M32
    a_hi = a >> _SHIFT32
    b_lo = b & _M32
    b_hi = b >> _SHIFT32
    ll = a_lo * b_lo
    lh = a_lo * b_hi
    hl = a_hi * b_lo
    hh = a_hi * b_hi
    mid = (ll >> _SHIFT32) + (lh & _M32) + (hl & _M32)
    lo = (ll & _M32) | ((mid & _M32) << _SHIFT32)
    hi = hh + (lh >> _SHIFT32) + (hl >> _SHIFT32) + (mid >> _SHIFT32)
    return hi, lo


@_jit
def _add128(a_hi, a_lo, b_hi, b_lo):
    lo = a_lo + b_lo
    if lo < a_lo:
        return a_hi + b_hi + _U64_1, lo
    return a_hi + b_hi, lo


@_jit
def _pcg_step(s_hi, s_lo, inc_hi, inc_lo):
    hi, lo = _mul_64_64(s_lo, _PCG_MULT_LO)
    hi = hi + s_lo * _PCG_MULT_HI + s_hi * _PCG_MULT_LO
    return _add128(hi, lo, inc_hi, inc_lo)


@_jit
def _link_uniform_kernel(words, out):
    # one copy per iteration: the full SeedSequence pool mix (entropy word
    # layout [seed, 0, 0, 0, tag, sender, receiver, iteration, nonce]),
    # generate_state(4, uint64), PCG64 seeding, one next64, 53-bit scale —
    # the data flow of delivery._seed_pool/_generate_state8/
    # _pcg64_first_double unrolled over the pool columns.
    for k in prange(words.shape[0]):
        hc = _INIT_A
        p0, hc = _hashmix(words[k, 0], hc)
        p1, hc = _hashmix(words[k, 1], hc)
        p2, hc = _hashmix(words[k, 2], hc)
        p3, hc = _hashmix(words[k, 3], hc)
        # cross-mix every (src, dst) pool pair, src outer, skipping src==dst
        h, hc = _hashmix(p0, hc)
        p1 = _mix(p1, h)
        h, hc = _hashmix(p0, hc)
        p2 = _mix(p2, h)
        h, hc = _hashmix(p0, hc)
        p3 = _mix(p3, h)
        h, hc = _hashmix(p1, hc)
        p0 = _mix(p0, h)
        h, hc = _hashmix(p1, hc)
        p2 = _mix(p2, h)
        h, hc = _hashmix(p1, hc)
        p3 = _mix(p3, h)
        h, hc = _hashmix(p2, hc)
        p0 = _mix(p0, h)
        h, hc = _hashmix(p2, hc)
        p1 = _mix(p1, h)
        h, hc = _hashmix(p2, hc)
        p3 = _mix(p3, h)
        h, hc = _hashmix(p3, hc)
        p0 = _mix(p0, h)
        h, hc = _hashmix(p3, hc)
        p1 = _mix(p1, h)
        h, hc = _hashmix(p3, hc)
        p2 = _mix(p2, h)
        # fold the five spawn-key words into every pool column
        for w in range(4, 9):
            src = words[k, w]
            h, hc = _hashmix(src, hc)
            p0 = _mix(p0, h)
            h, hc = _hashmix(src, hc)
            p1 = _mix(p1, h)
            h, hc = _hashmix(src, hc)
            p2 = _mix(p2, h)
            h, hc = _hashmix(src, hc)
            p3 = _mix(p3, h)
        # generate_state(4, uint64) as 8 uint32-domain words
        hc = _INIT_B
        s0 = (p0 ^ hc) & _M32
        hc = (hc * _MULT_B) & _M32
        s0 = (s0 * hc) & _M32
        s0 = (s0 ^ (s0 >> _XSHIFT)) & _M32
        s1 = (p1 ^ hc) & _M32
        hc = (hc * _MULT_B) & _M32
        s1 = (s1 * hc) & _M32
        s1 = (s1 ^ (s1 >> _XSHIFT)) & _M32
        s2 = (p2 ^ hc) & _M32
        hc = (hc * _MULT_B) & _M32
        s2 = (s2 * hc) & _M32
        s2 = (s2 ^ (s2 >> _XSHIFT)) & _M32
        s3 = (p3 ^ hc) & _M32
        hc = (hc * _MULT_B) & _M32
        s3 = (s3 * hc) & _M32
        s3 = (s3 ^ (s3 >> _XSHIFT)) & _M32
        s4 = (p0 ^ hc) & _M32
        hc = (hc * _MULT_B) & _M32
        s4 = (s4 * hc) & _M32
        s4 = (s4 ^ (s4 >> _XSHIFT)) & _M32
        s5 = (p1 ^ hc) & _M32
        hc = (hc * _MULT_B) & _M32
        s5 = (s5 * hc) & _M32
        s5 = (s5 ^ (s5 >> _XSHIFT)) & _M32
        s6 = (p2 ^ hc) & _M32
        hc = (hc * _MULT_B) & _M32
        s6 = (s6 * hc) & _M32
        s6 = (s6 ^ (s6 >> _XSHIFT)) & _M32
        s7 = (p3 ^ hc) & _M32
        hc = (hc * _MULT_B) & _M32
        s7 = (s7 * hc) & _M32
        s7 = (s7 ^ (s7 >> _XSHIFT)) & _M32
        # little-endian uint64 view of the uint32 word stream
        seed0 = (s1 << _SHIFT32) | s0
        seed1 = (s3 << _SHIFT32) | s2
        seed2 = (s5 << _SHIFT32) | s4
        seed3 = (s7 << _SHIFT32) | s6
        init_hi = seed0
        init_lo = seed1
        inc_hi = (seed2 << _SHIFT1) | (seed3 >> _SHIFT63)
        inc_lo = (seed3 << _SHIFT1) | _U64_1
        # pcg_setseq_128_srandom: state = 0; step; state += initstate; step
        s_hi, s_lo = _pcg_step(_U64_0, _U64_0, inc_hi, inc_lo)
        s_hi, s_lo = _add128(s_hi, s_lo, init_hi, init_lo)
        s_hi, s_lo = _pcg_step(s_hi, s_lo, inc_hi, inc_lo)
        # next64: advance, then XSL-RR (rotr64(hi ^ lo, state >> 122))
        s_hi, s_lo = _pcg_step(s_hi, s_lo, inc_hi, inc_lo)
        xored = s_hi ^ s_lo
        rot = s_hi >> _SHIFT58
        # shift counts stay in [0, 63] (the & 63 mirrors numpy's masking)
        res = (xored >> rot) | (xored << ((_U64_64 - rot) & _U64_63))
        out[k] = (res >> _SHIFT11) * _RECIP_2_53


def link_uniform_many(seed, tag, sender, receivers, iteration, nonces):
    """JIT replica of :func:`repro.kernels.delivery.link_uniform_many`."""
    receivers = np.asarray(receivers, dtype=np.uint64)
    n = receivers.shape[0]
    words = np.zeros((n, 9), dtype=np.uint64)
    words[:, 0] = np.asarray(seed, dtype=np.uint64)
    words[:, 4] = np.uint64(tag)
    words[:, 5] = np.asarray(sender, dtype=np.uint64)
    words[:, 6] = receivers
    words[:, 7] = np.asarray(iteration, dtype=np.uint64)
    words[:, 8] = np.asarray(nonces, dtype=np.uint64)
    out = np.empty(n, dtype=np.float64)
    if _numba is None:
        # plain-Python execution wraps np.uint64 scalars; the wraparound is
        # the intended modular arithmetic, not an error
        with np.errstate(over="ignore"):
            _link_uniform_kernel(words, out)
    else:
        _link_uniform_kernel(words, out)
    return out


# ---------------------------------------------------------------------------
# backend registration
# ---------------------------------------------------------------------------

#: the kernels this backend claims; ``batch_likelihood`` is deliberately
#: absent (numpy-only holdout, see the module docstring and DESIGN §4k)
KERNELS = {
    "batch_contributions": batch_contributions,
    "batch_propagate_ragged": batch_propagate_ragged,
    "link_uniform_many": link_uniform_many,
}


def warm_up() -> None:
    """Compile every claimed kernel on tiny representative inputs.

    The wrappers normalize dtypes/contiguity, so these calls create the
    one-and-only specialization of each ``@njit`` function; production
    calls then never recompile (asserted by the steady-state test).
    """
    if _numba is None:
        return
    batch_contributions(
        np.array([1.0, 2.0, 3.0]), np.array([0, 2, 3]), d_min=1e-3
    )
    batch_propagate_ragged(
        np.zeros((2, 2)),
        np.ones(2),
        np.array([3, 1, 2]),
        np.array([[1.0, 0.0], [0.5, 0.5], [0.0, 1.0]]),
        np.array([0, 2, 3]),
        area_radius=5.0,
        record_threshold=0.0,
        max_recorders=1,
        keep_mask=np.array([True, True, True]),
    )
    link_uniform_many(
        np.array([7, 7]), 1, 3, np.array([4, 5]), 2, np.array([0, 1])
    )


from . import KernelBackend  # noqa: E402  (import cycle: registry lives above)

BACKEND = KernelBackend(
    name="numba",
    kernels=KERNELS,
    availability=is_available,
    warm_up=warm_up,
)
