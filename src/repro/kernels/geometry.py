"""Vectorized geometry helpers that stay bitwise-faithful to the scalar code.

The scalar hot paths compute point distances two different ways and the
difference is *visible in the last bit*:

* ``np.linalg.norm(a - b)`` on a 2-vector goes through BLAS ``ddot``, which
  contracts the product sum with an FMA: ``fma(d1, d1, fl(d0 * d0))`` —
  one rounding fewer than plain multiply-add;
* ``np.sqrt(np.sum(d ** 2, axis=1))`` is the plain two-rounding form.

Batched rewrites must reproduce whichever form the code they replace used,
or fixed-seed runs drift in the last bit and the golden differential suite
fails.  ``fma_many`` emulates a correctly-rounded FMA with error-free
transformations (Dekker two-product + two-sum) in pure elementwise numpy —
verified bit-exact against BLAS ``ddot`` — so :func:`norm2d_many` gives the
``np.linalg.norm`` bits at any batch shape, portably.
"""

from __future__ import annotations

import numpy as np

__all__ = ["fma_many", "norm2d_many"]

_SPLIT = 134217729.0  # 2^27 + 1, Veltkamp splitting constant for float64


def fma_many(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Correctly rounded ``a * b + c``, elementwise (emulated FMA)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    p = a * b
    t = a * _SPLIT
    a_hi = t - (t - a)
    a_lo = a - a_hi
    t = b * _SPLIT
    b_hi = t - (t - b)
    b_lo = b - b_hi
    # a * b == p + e exactly (Dekker two-product)
    e = ((a_hi * b_hi - p) + a_hi * b_lo + a_lo * b_hi) + a_lo * b_lo
    s = p + c
    # p + c == s + err_s exactly (Knuth two-sum)
    bb = s - p
    err_s = (p - (s - bb)) + (c - bb)
    return s + (err_s + e)


def norm2d_many(dx: np.ndarray, dy: np.ndarray) -> np.ndarray:
    """Euclidean length of (dx, dy), matching ``np.linalg.norm`` bitwise.

    ``np.linalg.norm`` on a 2-vector evaluates ``sqrt(ddot(d, d))`` =
    ``sqrt(fma(dy, dy, dx * dx))``; this reproduces that contraction for
    arbitrary batch shapes.
    """
    return np.sqrt(fma_many(dy, dy, dx * dx))
