"""CPF: the centralized particle filter baseline (paper §II-A, Table I).

Every detecting node forwards its raw measurement to a sink node at the field
center over multi-hop greedy geographic routing; the sink runs a standard SIR
filter (N_s = 1000 in the paper's configuration) fusing all bearings.  The
communication cost is exactly Table I's convergecast term

    sum_i D_m * H_i   (one D_m-sized message per hop per detector)

which the medium's ledger records hop by hop.
"""

from __future__ import annotations

import numpy as np

from ..filters.sir import Observation, SIRFilter
from ..kernels.likelihood import fused_bearing
from ..models.measurement import BearingMeasurement
from ..network.messages import MeasurementMessage
from ..network.routing import RoutingError, greedy_path
from ..runtime import IterationState, Phase, PhasePipeline, TrackerStats
from ..scenario import Scenario, StepContext

__all__ = ["CPFTracker", "fuse_origin_bearings"]


def fuse_origin_bearings(
    values: np.ndarray, noise_std: float, bias_std: float
) -> tuple[float, float]:
    """Optimal fusion of M same-quantity bearings: circular mean + sigma_eff.

    With independent per-sensor noise sigma_n and a common-mode error
    sigma_b shared by all sensors in an iteration, the sufficient statistic
    is the (circular) mean bearing with

        sigma_eff^2 = sigma_n^2 / M + sigma_b^2.

    The common-mode term is what keeps the fused bearing from sharpening
    without bound as the node density grows.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("need at least one bearing to fuse")
    return fused_bearing(values, noise_std, bias_std)


class CPFTracker:
    """Centralized SIR at the sink; the reference for accuracy and cost."""

    def __init__(
        self,
        scenario: Scenario,
        *,
        rng: np.random.Generator,
        n_particles: int = 1000,
        resampler: str = "systematic",
        roughening: float = 0.2,
        process_noise_inflation: float = 10.0,
        medium=None,
    ) -> None:
        self.name = "CPF"
        self.scenario = scenario
        self.rng = rng
        self.medium = medium if medium is not None else scenario.make_medium()
        self.sink = scenario.sink_node()
        if process_noise_inflation <= 0:
            raise ValueError("process_noise_inflation must be positive")
        # Standard maneuvering-target Q tuning: the simulated target turns up
        # to +-15 deg/s, so the filter's CV process noise must cover the
        # turn-induced velocity changes or the cloud lags every maneuver.
        from ..models.constant_velocity import ConstantVelocityModel

        dyn = scenario.dynamics
        filter_dynamics = ConstantVelocityModel(
            dt=dyn.dt,
            sigma_x=dyn.sigma_x * process_noise_inflation,
            sigma_y=dyn.sigma_y * process_noise_inflation,
        )
        # Roughening is on by default: fusing tens of sharp bearings per
        # iteration collapses a plain SIR filter's ESS to ~1 and the track
        # diverges (see filters.sir).
        self.filter = SIRFilter(
            filter_dynamics, n_particles, rng=rng, resampler=resampler,
            roughening=roughening,
        )
        self._initialized = False
        self._estimate_iter: int | None = None
        self._path_cache: dict[int, list[int]] = {}
        self.hop_counts: list[int] = []  # per-message hop counts (for Table I checks)
        self._reliable = None  # lazy ARQ layer, built only for a lossy medium
        self.stats = TrackerStats()

        # All of CPF's traffic is the convergecast phase — exactly Table I's
        # single sum_i D_m H_i term; sensing and the sink-side SIR update are
        # radio-silent.
        self.phases = (
            Phase("sense", self._phase_sense),
            Phase("convergecast", self._phase_convergecast),
            Phase("sir_update", self._phase_sir_update),
        )
        self.pipeline = PhasePipeline(self, medium=self.medium, stats=self.stats)

    # ------------------------------------------------------------------

    def _route(self, source: int) -> list[int]:
        path = self._path_cache.get(source)
        if path is None:
            exclude = self._reliable.blacklist if self._reliable is not None else None
            path = greedy_path(
                self.scenario.deployment.index,
                source,
                self.sink,
                self.scenario.radio,
                exclude=exclude,
            )
            self._path_cache[source] = path
        return path

    def _arq(self):
        if self._reliable is None:
            from ..network.reliability import ReliableUnicast

            self._reliable = ReliableUnicast(
                self.medium,
                index=self.scenario.deployment.index,
                radio=self.scenario.radio,
            )
        return self._reliable

    def _phase_sense(self, state: IterationState) -> None:
        """Read out each detector's bearing (no radio traffic)."""
        ctx = state.ctx
        state.detectors = sorted(int(d) for d in np.asarray(ctx.detectors).ravel())
        state.readings = [(nid, float(ctx.measurements[nid])) for nid in state.detectors]

    def _phase_convergecast(self, state: IterationState) -> None:
        """Forward every detector's measurement to the sink; fuse the batch.

        The observation order follows the sorted detector ids; the circular
        mean in :meth:`_fuse` is evaluated over that exact order, so the
        convergecast stays one phase (splitting it would reorder the float
        reduction).
        """
        ctx = state.ctx
        positions = self.scenario.deployment.positions
        arrived: dict[int, bool] = {}
        if self.medium.is_unreliable:
            # lossy channel: convergecast runs over the bounded ack/retransmit
            # layer (hop-by-hop ARQ + route repair), every attempt charged to
            # the ledger.  Routes resolve lazily inside send_many so each
            # packet's route repair (blacklist growth) feeds the next route.
            requests = [
                (
                    lambda nid=nid: self._try_route(nid),
                    MeasurementMessage(sender=nid, iteration=ctx.iteration, value=z),
                )
                for nid, z in state.readings
                if nid != self.sink
            ]
            results = self._arq().send_many(requests, ctx.iteration)
            senders = [nid for nid, _z in state.readings if nid != self.sink]
            for nid, delivery in zip(senders, results):
                if delivery is None:
                    continue  # disconnected detector: measurement lost
                if delivery.receivers.size == 0:
                    # timed out (or parked for next iteration): the sink
                    # never fuses it this iteration; drop the cached path so
                    # the next report re-routes around whatever died
                    self._path_cache.pop(nid, None)
                    arrived[nid] = False
                else:
                    arrived[nid] = True
        else:
            # reliable channel: every detector's path rides one batch flush.
            # An asleep node anywhere on the transmitting prefix makes the
            # path raise in the scalar walk; pre-filter those so one sleeping
            # relay loses only its own packet, not the round.
            batch = self.medium.transmission_batch(ctx.iteration)
            entry_of: dict[int, int] = {}
            for nid, z in state.readings:
                if nid == self.sink:
                    continue
                path = self._try_route(nid)
                if path is None:  # disconnected detector: measurement lost
                    continue
                if any(self.medium.is_asleep(n) for n in path[:-1]):
                    continue  # a sleeping relay refuses to forward: lost
                msg = MeasurementMessage(sender=nid, iteration=ctx.iteration, value=z)
                entry_of[nid] = batch.unicast_path(path, msg)
            flushed = batch.flush()
            # a crashed relay silently eating the packet is the only loss
            arrived = {
                nid: not flushed[idx].dropped.size for nid, idx in entry_of.items()
            }
        # fuse in sorted-reading order (the circular mean in _fuse is order-
        # sensitive, so successful reports keep their pre-batch positions)
        observations: list[Observation] = []
        for nid, z in state.readings:
            if nid == self.sink:
                # the sink's own measurement needs no transmission
                observations.append(
                    Observation(self.scenario.measurement, z, positions[nid])
                )
                continue
            if not arrived.get(nid, False):
                continue
            self.hop_counts.append(len(self._path_cache[nid]) - 1)
            observations.append(Observation(self.scenario.measurement, z, positions[nid]))
        self.medium.clear_inboxes()
        state.observations = self._fuse(observations)

    def _try_route(self, source: int) -> list[int] | None:
        try:
            return self._route(source)
        except RoutingError:
            return None

    def _fuse(self, observations: list[Observation]) -> list[Observation]:
        """Collapse origin-referenced bearings into their sufficient statistic."""
        meas = self.scenario.measurement
        if (
            len(observations) <= 1
            or not isinstance(meas, BearingMeasurement)
            or meas.reference != "origin"
        ):
            return observations
        values = np.array([obs.z for obs in observations])
        z_fused, sigma_eff = fuse_origin_bearings(
            values, meas.noise_std, self.scenario.measurement_bias_std
        )
        fused_model = BearingMeasurement(noise_std=sigma_eff, reference="origin")
        return [Observation(fused_model, z_fused, None)]

    def _initialize(self, ctx: StepContext, observations: list[Observation]) -> None:
        """Track birth: a Gaussian prior centered on the detectors' centroid."""
        if not observations:
            return
        positions = self.scenario.deployment.positions
        ids = [int(d) for d in np.asarray(ctx.detectors).ravel()]
        centroid = positions[ids].mean(axis=0)
        s = self.scenario
        mean = np.array([centroid[0], centroid[1], *s.prior_velocity])
        cov = np.diag(
            [
                s.prior_position_std**2,
                s.prior_position_std**2,
                s.prior_velocity_std**2,
                s.prior_velocity_std**2,
            ]
        )
        self.filter.initialize(mean, cov)
        self.filter.update(observations)
        self.filter.force_resample()
        self._initialized = True

    # ------------------------------------------------------------------

    def step(self, ctx: StepContext) -> np.ndarray | None:
        return self.pipeline.run(ctx)

    def _phase_sir_update(self, state: IterationState) -> None:
        """Sink-side SIR update (or track birth) on the fused observations."""
        observations = state.observations
        if not self._initialized:
            self._initialize(state.ctx, observations)
            if not self._initialized:
                return  # no detections yet: the track is unborn
        else:
            self.filter.step(observations)
        self._estimate_iter = state.iteration
        state.estimate = self.filter.estimate()[:2]

    def estimate_iteration(self) -> int | None:
        return self._estimate_iter

    @property
    def accounting(self):
        return self.medium.accounting

    # -- checkpoint protocol -------------------------------------------------

    def snapshot(self) -> dict:
        """Filter cloud, route caches, and the ARQ layer (when built).  The
        tracker and its SIR filter share one generator object, so the RNG
        stream is captured once here, not inside the filter snapshot."""
        from ..runtime.checkpoint import snapshot_rng

        return {
            "filter": self.filter.snapshot(),
            "initialized": bool(self._initialized),
            "estimate_iter": self._estimate_iter,
            "path_cache": [
                [int(src), [int(n) for n in path]]
                for src, path in sorted(self._path_cache.items())
            ],
            "hop_counts": [int(h) for h in self.hop_counts],
            "reliable": None if self._reliable is None else self._reliable.snapshot(),
            "rng": snapshot_rng(self.rng),
            "stats": self.stats.snapshot(),
        }

    def restore(self, state: dict) -> None:
        from ..runtime.checkpoint import restore_rng

        self.filter.restore(state["filter"])
        self._initialized = bool(state["initialized"])
        self._estimate_iter = (
            None if state["estimate_iter"] is None else int(state["estimate_iter"])
        )
        self._path_cache = {
            int(src): [int(n) for n in path] for src, path in state["path_cache"]
        }
        self.hop_counts = [int(h) for h in state["hop_counts"]]
        if state["reliable"] is None:
            self._reliable = None
        else:
            self._arq().restore(state["reliable"])
        restore_rng(self.rng, state["rng"])
        self.stats.restore(state["stats"])
