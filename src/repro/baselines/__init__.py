"""Baseline trackers the paper compares against: CPF and SDPF (+ compression DPFs)."""

from .cpf import CPFTracker, fuse_origin_bearings
from .dpf_compression import DPFTracker, dequantize_bearing, quantize_bearing
from .sdpf import SDPFTracker

__all__ = [
    "CPFTracker", "fuse_origin_bearings",
    "DPFTracker", "dequantize_bearing", "quantize_bearing",
    "SDPFTracker",
]
