"""SDPF: the semi-distributed particle filter baseline (Coates & Ing [7]).

Particles are maintained on sensor nodes exactly as in CDPF — the propagation,
division and combination mechanics are shared with
:mod:`repro.core.propagation` — but the filter keeps the *classic* step order,
which forces weight aggregation through a **global transceiver** assumed to be
one radio hop from every node.  Each iteration:

1. **propagation** — every holder broadcasts its (up to ``particles_per_node``)
   particles one hop; recorders record/divide/combine           [N_s (D_p + D_w)]
2. **measurement sharing** — holders that detected broadcast     [N_n D_m]
3. **likelihood + weight update** locally on every holder
4. **weight aggregation** — three-way handshake with the transceiver:
   query broadcast, per-holder weight reports, total broadcast  [N_s D_w + 2 msgs]
5. **resampling** — holders normalize by the total and apply the drop rule;
   per-node particle lists are capped at ``particles_per_node``
6. **estimation** — the transceiver, which received every weight (and knows
   the static host positions), computes the global estimate; unlike CDPF the
   estimate is available for the *current* iteration.

The per-iteration cost is Table I's  N_s (D_p + D_m + 2 D_w)  row, which the
simulator's ledger reproduces exactly (a test asserts it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.propagation import PropagationConfig
from ..kernels.propagation import batch_implied_velocities, batch_propagate
from ..network.messages import (
    MeasurementMessage,
    ParticleMessage,
    QueryMessage,
    TotalWeightMessage,
    WeightReportMessage,
)
from ..runtime import IterationState, Phase, PhasePipeline, TrackerStats
from ..scenario import Scenario, StepContext

__all__ = ["SDPFTracker"]


@dataclass
class _NodeParticles:
    """A holder's particle list: velocities (n, 2) and weights (n,)."""

    velocities: np.ndarray
    weights: np.ndarray

    @property
    def n(self) -> int:
        return self.weights.shape[0]

    @property
    def total(self) -> float:
        return float(self.weights.sum())


class SDPFTracker:
    """Semi-distributed PF with transceiver-based weight aggregation."""

    def __init__(
        self,
        scenario: Scenario,
        *,
        rng: np.random.Generator,
        config: PropagationConfig | None = None,
        particles_per_node: int = 8,
        initial_weight: float = 1.0,
        medium=None,
    ) -> None:
        if particles_per_node < 1:
            raise ValueError(f"particles_per_node must be >= 1, got {particles_per_node}")
        self.name = "SDPF"
        self.scenario = scenario
        self.rng = rng
        if config is None:
            # blend (not track) by default: SDPF's per-node particle lists
            # draw their diversity from per-particle displacement velocities
            config = PropagationConfig(
                predicted_area_radius=scenario.sensing_radius, velocity_mode="blend"
            )
        self.config = config
        self.particles_per_node = particles_per_node
        self.initial_weight = float(initial_weight)
        self.medium = medium if medium is not None else scenario.make_medium()
        self.neighbors = scenario.make_neighbor_tables()
        self.holders: dict[int, _NodeParticles] = {}
        self._estimate: np.ndarray | None = None
        self._estimate_iter: int | None = None
        self._velocity_estimate: np.ndarray | None = None
        self._last_sender_positions: np.ndarray | None = None
        self._last_predictions: np.ndarray | None = None
        self._last_union_count = 1
        self.transceiver_id = -1  # pseudo-node; not part of the deployment
        self.stats = TrackerStats()

        # The classic SIR order of Fig. 2(a): measurement sharing and the
        # local likelihood multiply are separate phases (Table I charges the
        # sharing traffic under N_n D_m), and the transceiver handshake is
        # the aggregation phase whose 2-message overhead CDPF eliminates.
        self.phases = (
            Phase("propagation", self._phase_propagation),
            Phase("creation", self._phase_creation),
            Phase("share", self._phase_share),
            Phase("likelihood", self._phase_likelihood),
            Phase("aggregation", self._phase_aggregation),
            Phase("resample", self._phase_resample),
            Phase("estimation", self._phase_estimation),
        )
        self.pipeline = PhasePipeline(self, medium=self.medium, stats=self.stats)

    @property
    def degraded_iterations(self) -> int:
        """Iterations where channel loss erased every recorded share and the
        tracker fell back to prior-weight propagation (0 on a reliable medium)."""
        return self.stats.degraded_iterations

    # ------------------------------------------------------------------

    @property
    def n_particles_total(self) -> int:
        """N_s: the number of particles currently maintained network-wide."""
        return sum(p.n for p in self.holders.values())

    def estimate_iteration(self) -> int | None:
        return self._estimate_iter

    @property
    def accounting(self):
        return self.medium.accounting

    # ------------------------------------------------------------------
    # checkpoint protocol
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Mutable tracker state only; the medium snapshots at the run layer."""
        from ..runtime.checkpoint import snapshot_rng

        return {
            "holders": [
                [int(nid), p.velocities.copy(), p.weights.copy()]
                for nid, p in sorted(self.holders.items())
            ],
            "estimate": None if self._estimate is None else self._estimate.copy(),
            "estimate_iter": self._estimate_iter,
            "velocity_estimate": (
                None
                if self._velocity_estimate is None
                else np.asarray(self._velocity_estimate, dtype=np.float64).copy()
            ),
            "last_sender_positions": (
                None
                if self._last_sender_positions is None
                else self._last_sender_positions.copy()
            ),
            "last_predictions": (
                None if self._last_predictions is None else self._last_predictions.copy()
            ),
            "last_union_count": int(self._last_union_count),
            "rng": snapshot_rng(self.rng),
            "stats": self.stats.snapshot(),
        }

    def restore(self, state: dict) -> None:
        from ..runtime.checkpoint import restore_rng

        self.holders = {
            int(nid): _NodeParticles(
                velocities=np.asarray(velocities, dtype=np.float64),
                weights=np.asarray(weights, dtype=np.float64),
            )
            for nid, velocities, weights in state["holders"]
        }
        est = state["estimate"]
        self._estimate = None if est is None else np.asarray(est, dtype=np.float64).copy()
        self._estimate_iter = (
            None if state["estimate_iter"] is None else int(state["estimate_iter"])
        )
        vel = state["velocity_estimate"]
        self._velocity_estimate = (
            None if vel is None else np.asarray(vel, dtype=np.float64).copy()
        )
        sp = state["last_sender_positions"]
        self._last_sender_positions = (
            None if sp is None else np.asarray(sp, dtype=np.float64).copy()
        )
        lp = state["last_predictions"]
        self._last_predictions = (
            None if lp is None else np.asarray(lp, dtype=np.float64).copy()
        )
        self._last_union_count = int(state["last_union_count"])
        restore_rng(self.rng, state["rng"])
        self.stats.restore(state["stats"])

    # ------------------------------------------------------------------

    def step(self, ctx: StepContext) -> np.ndarray | None:
        """One SDPF iteration; the estimate refers to the *current* iteration."""
        return self.pipeline.run(ctx)

    # ------------------------------------------------------------------

    def _initialize(self, detectors: set[int]) -> None:
        if not detectors:
            return
        v0 = np.asarray(self.scenario.prior_velocity, dtype=np.float64)
        m = self.particles_per_node
        for nid in sorted(detectors):
            # sample the velocity prior: per-particle diversity is the whole
            # point of holding m particles per node (identical velocities
            # would make the m-fold propagation cost pure waste)
            velocities = v0 + self.rng.normal(
                0.0, self.scenario.prior_velocity_std, size=(m, 2)
            )
            self.holders[nid] = _NodeParticles(
                velocities=velocities,
                weights=np.full(m, self.initial_weight / m),
            )

    def _create_new_particles(self, detectors: set[int]) -> set[int]:
        """Same creation rule as CDPF: detectors outside all predicted areas."""
        positions = self.scenario.deployment.positions
        if self.holders:
            base = float(np.mean([p.total for p in self.holders.values()]))
        else:
            base = self.initial_weight
        sender_pos = self._last_sender_positions
        predictions = self._last_predictions
        comm_r2 = self.scenario.radio.comm_radius**2
        slack_r = self.config.creation_slack * self.config.predicted_area_radius
        v0 = np.asarray(self.scenario.prior_velocity, dtype=np.float64)
        m = self.particles_per_node
        area_ratio = (self.scenario.sensing_radius / self.scenario.radio.comm_radius) ** 2
        track_alive = bool(self.holders)
        created: set[int] = set()
        for nid in sorted(detectors):
            if nid in self.holders or not self.medium.is_available(nid):
                continue
            if track_alive:
                # local creation rate limit (see core.cdpf)
                n_codetectors = max(1.0, (self.neighbors.degree(nid) + 1) * area_ratio)
                if self.rng.uniform() >= min(1.0, self.config.creation_limit / n_codetectors):
                    continue
            if sender_pos is not None and sender_pos.size:
                heard = np.sum((sender_pos - positions[nid]) ** 2, axis=1) <= comm_r2
                if heard.any():
                    d_pred = np.sqrt(
                        np.sum((predictions[heard] - positions[nid]) ** 2, axis=1)
                    )
                    if (d_pred <= slack_r).any():
                        continue
            if self._estimate is not None:
                # displacement from the last global estimate to the creator —
                # a direct velocity observation (see core.cdpf)
                velocity = (positions[nid] - self._estimate) / self.scenario.dynamics.dt
            else:
                velocity = v0
            velocities = velocity + self.rng.normal(
                0.0, self.scenario.prior_velocity_std, size=(m, 2)
            )
            self.holders[nid] = _NodeParticles(
                velocities=velocities,
                weights=np.full(m, base / m),
            )
            created.add(nid)
        return created

    # ------------------------------------------------------------------

    def _phase_propagation(self, state: IterationState) -> None:
        """Step 1: broadcast particle lists; record/divide/combine per particle.

        Also hosts the birth iteration: with no holders yet the detectors seed
        the first particle lists and the iteration jumps straight to the
        aggregation handshake (``state.birth`` short-circuits the in-between
        phases), exactly as the classic order prescribes.
        """
        state.detectors = set(int(d) for d in np.asarray(state.ctx.detectors).ravel())
        state.birth = False
        if not self.holders:
            self._initialize(state.detectors)
            if not self.holders:
                state.finish(None)
            else:
                state.birth = True
            return
        k = state.iteration
        positions = self.scenario.deployment.positions
        index = self.scenario.deployment.index
        dt = self.scenario.dynamics.dt
        cfg = self.config

        broadcast: list[ParticleMessage] = []
        batch = self.medium.transmission_batch(k)
        for nid in sorted(self.holders):
            if not self.medium.is_available(nid):
                continue  # sleeping/failed holder: its particles leak away
            p = self.holders[nid]
            states = np.hstack([np.tile(positions[nid], (p.n, 1)), p.velocities])
            msg = ParticleMessage(sender=nid, iteration=k, states=states, weights=p.weights)
            batch.broadcast(nid, msg)
            broadcast.append(msg)
        # per-broadcast recipients that lost the copy, aligned with broadcast
        lost_sets = [
            set(delivery.dropped.tolist()) | set(delivery.delayed.tolist())
            for delivery in batch.flush()
        ]
        if not broadcast:
            self.holders = {}
            return

        # Per-broadcast recording (consistent across receivers, evaluated once
        # per particle — see the Theorem-2 note in repro.core.cdpf).
        all_states = np.vstack([m.states for m in broadcast])
        self._last_sender_positions = all_states[:, :2]
        self._last_predictions = all_states[:, :2] + all_states[:, 2:] * dt
        comm_radius = self.scenario.radio.comm_radius
        shares_at: dict[int, list[tuple[float, np.ndarray]]] = {}
        all_recorder_ids: set[int] = set()
        for mi, msg in enumerate(broadcast):
            # one spatial query per message covering all of its particles'
            # predicted areas, then vectorized per-particle filtering
            preds = msg.states[:, :2] + msg.states[:, 2:] * dt
            center = preds.mean(axis=0)
            spread = float(np.max(np.linalg.norm(preds - center, axis=1))) if preds.shape[0] > 1 else 0.0
            sender_pos0 = msg.states[0, :2]
            cand_all = index.query_disk(center, cfg.predicted_area_radius + spread)
            if cand_all.size == 0:
                continue
            d_sender_all = np.sqrt(
                np.sum((positions[cand_all] - sender_pos0) ** 2, axis=1)
            )
            cand_all = cand_all[d_sender_all <= comm_radius]
            lost = lost_sets[mi]
            if lost and cand_all.size:
                # recipients that lost this broadcast heard none of its
                # particles and cannot record any of its shares
                keep = np.fromiter(
                    (int(c) not in lost for c in cand_all), dtype=bool, count=cand_all.size
                )
                cand_all = cand_all[keep]
            if cand_all.size == 0:
                continue
            cand_pos_all = positions[cand_all]
            # all of the message's particles against the shared candidate set
            # in one batched selection; the per-particle in-area cut keeps the
            # scalar path's squared-distance compare bitwise (Python ``** 2``
            # on the radius, plain mul-add on the coordinate deltas)
            pdx = cand_pos_all[None, :, 0] - preds[:, 0:1]
            pdy = cand_pos_all[None, :, 1] - preds[:, 1:2]
            in_area_masks = pdx * pdx + pdy * pdy <= cfg.predicted_area_radius**2
            selected = batch_propagate(
                preds,
                msg.weights,
                cand_all,
                cand_pos_all,
                area_radius=cfg.predicted_area_radius,
                record_threshold=cfg.record_threshold,
                max_recorders=cfg.max_recorders,
                keep_masks=in_area_masks,
            )
            for j, (sel, _, rec_shares) in enumerate(selected):
                if sel.size == 0:
                    continue
                rec_ids = cand_all[sel]
                all_recorder_ids.update(rec_ids.tolist())
                vels = batch_implied_velocities(
                    msg.states[j, :2],
                    positions[rec_ids],
                    msg.states[j, 2:],
                    dt,
                    cfg.velocity_mode,
                    cfg.velocity_alpha,
                    track_velocity=self._velocity_estimate,
                )
                for i, (rid, share) in enumerate(
                    zip(rec_ids.tolist(), rec_shares.tolist())
                ):
                    if not self.medium.is_available(rid):
                        continue
                    shares_at.setdefault(rid, []).append((share, vels[i]))

        new_holders: dict[int, _NodeParticles] = {}
        for rid in sorted(shares_at):
            received = shares_at[rid]
            weights = np.array([s[0] for s in received])
            velocities = np.vstack([s[1] for s in received])
            # local thinning: keep the top particles_per_node shares,
            # preserving the node's total weight through the cut
            if weights.size > self.particles_per_node:
                order = np.argsort(weights)[::-1][: self.particles_per_node]
                total_before = weights.sum()
                weights, velocities = weights[order], velocities[order]
                kept = weights.sum()
                if kept > 0:
                    weights = weights * (total_before / kept)
            new_holders[rid] = _NodeParticles(velocities=velocities, weights=weights)

        if not new_holders and any(lost_sets):
            # Graceful degradation: every share was lost to the channel.
            # Prior-weight propagation — surviving holders keep their particle
            # lists for one iteration instead of the track dying in one fade.
            self.stats.degraded_iterations += 1
            new_holders = {
                nid: p for nid, p in self.holders.items() if self.medium.is_available(nid)
            }
        self.holders = new_holders
        self._last_union_count = max(len(all_recorder_ids), 1)
        self.medium.clear_inboxes()

    # ------------------------------------------------------------------

    def _phase_creation(self, state: IterationState) -> None:
        if state.birth:
            return
        state.created = self._create_new_particles(state.detectors)

    def _phase_share(self, state: IterationState) -> None:
        """Step 2: holders that detected broadcast their measurements (N_n D_m)."""
        if state.birth:
            return
        ctx = state.ctx
        k = state.iteration
        sharers = sorted(
            nid
            for nid in self.holders
            if nid in state.detectors and self.medium.is_available(nid)
        )
        batch = self.medium.transmission_batch(k)
        for s in sharers:
            msg = MeasurementMessage(sender=s, iteration=k, value=float(ctx.measurements[s]))
            batch.broadcast(s, msg)
        batch.flush()

    def _phase_likelihood(self, state: IterationState) -> None:
        """Step 3: every holder multiplies its weights by the joint likelihood."""
        if state.birth:
            return
        ctx = state.ctx
        detectors = state.detectors
        positions = self.scenario.deployment.positions
        measurement = self.scenario.measurement
        rows: list[int] = []
        pair_lists: list[list[tuple[int, float]]] = []
        for r in sorted(self.holders):
            if r in state.created:
                self.medium.collect(r)
                continue
            inbox = [m for m in self.medium.collect(r) if isinstance(m, MeasurementMessage)]
            own = [(r, ctx.measurements[r])] if r in detectors else []
            pairs = [(m.sender, m.value) for m in inbox] + own
            if not pairs:
                continue
            rows.append(r)
            pair_lists.append(pairs)
        if rows:
            from ..kernels import batch_likelihood  # dispatching wrapper

            # one (holders, measurements) log-kernel matrix with the
            # discretization-aware sigma inflation (see core.cdpf); columns
            # key on distinct (sender, value) pairs so delayed stale copies
            # evaluate separately from this iteration's readings
            col_of: dict[tuple[int, float], int] = {}
            for pairs in pair_lists:
                for pair in pairs:
                    if pair not in col_of:
                        col_of[pair] = len(col_of)
            refs = np.vstack(
                [measurement.reference_point(positions[s]) for s, _ in col_of]
            )
            zs = np.array([z for _, z in col_of], dtype=np.float64)
            lam_denom = np.pi * self.scenario.radio.comm_radius**2
            lam = np.array(
                [(self.neighbors.degree(r) + 1) / lam_denom for r in rows]
            )
            matrix = batch_likelihood(
                positions[rows], lam, refs, zs, measurement.noise_std
            )
            for i, (r, pairs) in enumerate(zip(rows, pair_lists)):
                cols = [col_of[pair] for pair in pairs]
                # tempered fusion — same rationale as CDPF (see core.cdpf)
                log_lik = float(matrix[i, cols].mean())
                p = self.holders[r]
                p.weights = p.weights * float(np.exp(log_lik))
        self.medium.clear_inboxes()

    # ------------------------------------------------------------------

    def _phase_aggregation(self, state: IterationState) -> None:
        """Step 4: three-way transceiver handshake (query, reports, total)."""
        k = state.iteration

        # (a) transceiver query broadcast (1 global message)
        self.medium.global_broadcast(
            QueryMessage(sender=self.transceiver_id, iteration=k), k
        )
        # (b) every holder reports its weights (N_s * D_w bytes, one msg each);
        #     the transceiver is simulated by the harness, so the reports are
        #     charged out of band rather than delivered to a field inbox.
        reported: list[tuple[int, np.ndarray]] = []
        batch = self.medium.transmission_batch(k)
        for nid in sorted(self.holders):
            p = self.holders[nid]
            report = WeightReportMessage(sender=nid, iteration=k, weights=p.weights)
            batch.charge_out_of_band(
                report.category, report.size_bytes(self.medium.sizes), 1
            )
            reported.append((nid, p.weights))
        batch.flush()
        total = float(sum(w.sum() for _, w in reported))
        # (c) transceiver broadcasts the total (1 global message)
        self.medium.global_broadcast(
            TotalWeightMessage(sender=self.transceiver_id, iteration=k, total_weight=max(total, 0.0)),
            k,
        )
        self.medium.clear_inboxes()
        state.reported = reported
        state.total = total

    def _phase_resample(self, state: IterationState) -> None:
        """Step 5: normalize by the total; a holder drops out when its share
        falls below drop_threshold times the average per-node share
        (scale-free, so a freshly initialized population of equal-weight
        holders always survives)."""
        total = state.total
        if total > 0 and self.holders:
            threshold = self.config.drop_threshold / len(self.holders)
            for nid in list(self.holders):
                p = self.holders[nid]
                p.weights = p.weights / total
                if p.weights.sum() < threshold:
                    del self.holders[nid]

    def _phase_estimation(self, state: IterationState) -> None:
        """Step 6: the transceiver computes the global (current-iteration) estimate."""
        self.stats.record_population(len(self.holders), len(state.created))
        reported = state.reported
        if not reported:
            return  # estimate stays unavailable this iteration
        k = state.iteration
        positions = self.scenario.deployment.positions
        # transceiver-side estimate: weights + static (a-priori known) host positions
        ids = [nid for nid, _ in reported]
        w_sums = np.array([float(w.sum()) for _, w in reported])
        w_total = float(w_sums.sum())
        if w_total > 0:
            est = (w_sums / w_total) @ positions[ids]
        else:
            est = positions[ids].mean(axis=0)
        # velocity estimate for new-particle seeding: finite difference of
        # successive global estimates (the transceiver never sees velocities)
        if self._estimate is not None and self._estimate_iter == k - 1:
            self._velocity_estimate = (est - self._estimate) / self.scenario.dynamics.dt
        self._estimate = est
        self._estimate_iter = k
        state.estimate = self._estimate

    # convenience for tests -------------------------------------------------

    @property
    def holder_ids(self) -> list[int]:
        return sorted(self.holders)
