"""Compression-based DPFs: the Table-I "DPF" row (Coates [10], Sheng [5]).

The computation follows the target through a chain of *leader* nodes: each
iteration, the detector closest to the predicted target position becomes the
leader, receives the local measurements, runs a full SIR update, and hands
the posterior to the next leader.  Communication per iteration is Table I's
``N * P * H`` plus the leader hand-off:

* measurements reach the leader *quantized to b bits* (P = b/8 bytes) —
  Coates' adaptive-encoding idea;
* the posterior travels between leaders either as a **Gaussian mixture**
  (``compression="gmm"``, Sheng et al.: K(2d+1) scalars) or as a
  **quantized particle subsample** (``compression="quantized"``, Coates:
  m particles on a b-bit grid).

Dequantization noise is folded into the measurement model's sigma (uniform
quantization adds variance step^2 / 12), so the filter stays statistically
consistent with what it actually receives.
"""

from __future__ import annotations

import numpy as np

from ..filters.gmm import GaussianMixture, fit_gmm
from ..filters.sir import Observation, SIRFilter
from ..kernels.likelihood import dequantize_bearings, quantize_bearings
from ..models.constant_velocity import ConstantVelocityModel
from ..models.measurement import BearingMeasurement
from ..network.messages import FilterStateMessage, QuantizedMeasurementMessage
from ..network.routing import RoutingError, greedy_path
from ..runtime import IterationState, Phase, PhasePipeline, TrackerStats
from ..scenario import Scenario, StepContext

__all__ = ["DPFTracker", "quantize_bearing", "dequantize_bearing"]


def quantize_bearing(z: float, bits: int) -> int:
    """Uniformly quantize a bearing in (-pi, pi] to a b-bit code."""
    return int(quantize_bearings(np.asarray([z]), bits)[0])


def dequantize_bearing(code: int, bits: int) -> float:
    """Center of the code's quantization cell."""
    return float(dequantize_bearings(np.asarray([code]), bits)[0])


class DPFTracker:
    """Leader-chain DPF with quantized measurements and compressed hand-offs.

    Parameters
    ----------
    quantization_bits:
        Bearing quantization depth b (P = ceil(b/8) bytes per measurement).
    compression:
        ``"gmm"`` — posterior hand-off as a diagonal GMM;
        ``"quantized"`` — hand-off as a subsample of particles, each state
        scalar charged one weight-sized integer.
    n_particles:
        SIR population maintained at the leader.
    gmm_components / handoff_particles:
        Size of the respective compressed representation.
    """

    def __init__(
        self,
        scenario: Scenario,
        *,
        rng: np.random.Generator,
        quantization_bits: int = 8,
        compression: str = "gmm",
        n_particles: int = 200,
        gmm_components: int = 3,
        handoff_particles: int = 16,
        process_noise_inflation: float = 10.0,
        medium=None,
    ) -> None:
        if compression not in ("gmm", "quantized"):
            raise ValueError(f"compression must be 'gmm' or 'quantized', got {compression!r}")
        if quantization_bits <= 0:
            raise ValueError("quantization_bits must be positive")
        self.name = f"DPF-{compression}"
        self.scenario = scenario
        self.rng = rng
        self.bits = quantization_bits
        self.compression = compression
        self.n_particles = n_particles
        self.gmm_components = gmm_components
        self.handoff_particles = handoff_particles
        self.medium = medium if medium is not None else scenario.make_medium()

        dyn = scenario.dynamics
        self._filter_dynamics = ConstantVelocityModel(
            dt=dyn.dt,
            sigma_x=dyn.sigma_x * process_noise_inflation,
            sigma_y=dyn.sigma_y * process_noise_inflation,
        )
        # quantization adds uniform noise with variance step^2 / 12
        step = 2 * np.pi / 2**quantization_bits
        meas = scenario.measurement
        if not isinstance(meas, BearingMeasurement):
            raise TypeError("DPFTracker requires a BearingMeasurement scenario")
        self._meas_model = BearingMeasurement(
            noise_std=float(np.sqrt(meas.noise_std**2 + step**2 / 12.0)),
            reference=meas.reference,
        )

        self.leader: int | None = None
        self.filter: SIRFilter | None = None
        self._estimate: np.ndarray | None = None
        self._estimate_iter: int | None = None
        self.stats = TrackerStats()

        # The leader-chain iteration: traffic splits into the hand-off
        # (posterior compression) and collection (N P H) phases; sensing,
        # election, and the leader's SIR update are radio-silent.
        self.phases = (
            Phase("sense", self._phase_sense),
            Phase("leader_election", self._phase_leader_election),
            Phase("handoff", self._phase_handoff),
            Phase("collect", self._phase_collect),
            Phase("sir_update", self._phase_sir_update),
        )
        self.pipeline = PhasePipeline(self, medium=self.medium, stats=self.stats)

    # ------------------------------------------------------------------

    def estimate_iteration(self) -> int | None:
        return self._estimate_iter

    @property
    def accounting(self):
        return self.medium.accounting

    # ------------------------------------------------------------------
    # checkpoint protocol
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Leader chain, filter cloud (when born), and the shared RNG stream.
        The SIR filter shares the tracker's generator object, so its stream
        is captured once here; the filter snapshot carries particles only."""
        from ..runtime.checkpoint import snapshot_rng

        return {
            "leader": self.leader,
            "filter": None if self.filter is None else self.filter.snapshot(),
            "estimate": None if self._estimate is None else self._estimate.copy(),
            "estimate_iter": self._estimate_iter,
            "rng": snapshot_rng(self.rng),
            "stats": self.stats.snapshot(),
        }

    def restore(self, state: dict) -> None:
        from ..runtime.checkpoint import restore_rng

        self.leader = None if state["leader"] is None else int(state["leader"])
        if state["filter"] is None:
            self.filter = None
        else:
            if self.filter is None:
                # same construction parameters as track birth in
                # _phase_leader_election; the cloud is transplanted next
                self.filter = SIRFilter(
                    self._filter_dynamics, self.n_particles, rng=self.rng,
                    roughening=0.2,
                )
            self.filter.restore(state["filter"])
        est = state["estimate"]
        self._estimate = None if est is None else np.asarray(est, dtype=np.float64).copy()
        self._estimate_iter = (
            None if state["estimate_iter"] is None else int(state["estimate_iter"])
        )
        restore_rng(self.rng, state["rng"])
        self.stats.restore(state["stats"])

    # ------------------------------------------------------------------

    def _elect_leader(self, detectors: np.ndarray) -> int:
        """The detector nearest the predicted target position leads."""
        positions = self.scenario.deployment.positions
        if self._estimate is not None and self.filter is not None:
            target = self.filter.estimate()[:2]
        elif self._estimate is not None:
            target = self._estimate
        else:
            target = positions[detectors].mean(axis=0)
        d2 = np.sum((positions[detectors] - target) ** 2, axis=1)
        return int(detectors[np.argmin(d2)])

    def _collect_measurements(self, ctx: StepContext, leader: int, detectors: np.ndarray) -> list[Observation]:
        """Quantized measurements routed to the leader (N * P * H of Table I)."""
        positions = self.scenario.deployment.positions
        observations: list[Observation] = []
        det_sorted = sorted(int(d) for d in detectors)
        # quantizer round-trip batched over the whole detector set; the
        # per-detector routing below keeps its scalar loop (path-dependent)
        codes = quantize_bearings(
            np.array([float(ctx.measurements[n]) for n in det_sorted]), self.bits
        )
        zs = dequantize_bearings(codes, self.bits)
        for i, nid in enumerate(det_sorted):
            code = int(codes[i])
            z = float(zs[i])
            obs = Observation(self._meas_model, z, positions[nid])
            if nid == leader:
                observations.append(obs)
                continue
            msg = QuantizedMeasurementMessage(
                sender=nid, iteration=ctx.iteration, code=code, bits=self.bits
            )
            try:
                path = greedy_path(
                    self.scenario.deployment.index, nid, leader, self.scenario.radio
                )
                self.medium.unicast_path(path, msg, ctx.iteration)
            except (RoutingError, RuntimeError):
                continue  # unroutable or a relay unavailable: measurement lost
            observations.append(obs)
        self.medium.clear_inboxes()
        return observations

    # -- posterior hand-off ------------------------------------------------

    def _compress_posterior(self) -> np.ndarray:
        states = self.filter.particles.states
        weights = self.filter.particles.weights
        if self.compression == "gmm":
            gmm = fit_gmm(
                states, self.gmm_components, rng=self.rng, sample_weights=weights
            )
            return gmm.to_params()
        # quantized subsample: the top handoff_particles by weight
        order = np.argsort(weights)[::-1][: self.handoff_particles]
        return states[order].ravel()

    def _decompress_posterior(self, params: np.ndarray) -> None:
        if self.compression == "gmm":
            gmm = GaussianMixture.from_params(params, self.gmm_components, 4)
            states = gmm.sample(self.n_particles, self.rng)
        else:
            anchors = params.reshape(-1, 4)
            idx = self.rng.integers(anchors.shape[0], size=self.n_particles)
            jitter = self.rng.normal(0.0, 0.5, size=(self.n_particles, 4))
            states = anchors[idx] + jitter
        from ..filters.particles import ParticleSet

        self.filter.initialize_from(ParticleSet(states, copy=False))

    def _handoff(self, old_leader: int, new_leader: int, k: int) -> None:
        """Route the compressed posterior from the old leader to the new one."""
        params = self._compress_posterior()
        msg = FilterStateMessage(sender=old_leader, iteration=k, params=params)
        try:
            path = greedy_path(
                self.scenario.deployment.index, old_leader, new_leader, self.scenario.radio
            )
            self.medium.unicast_path(path, msg, k)
        except (RoutingError, RuntimeError):
            return  # hand-off failed: the new leader re-initializes from scratch
        self.medium.clear_inboxes()
        self._decompress_posterior(params)

    # ------------------------------------------------------------------

    def step(self, ctx: StepContext) -> np.ndarray | None:
        return self.pipeline.run(ctx)

    def _phase_sense(self, state: IterationState) -> None:
        """Parse the detector set; with no detections the leader coasts."""
        state.detectors = np.asarray(state.ctx.detectors).ravel()
        if state.detectors.size == 0:
            if self.filter is not None:
                self.filter.predict()
                self._estimate = self.filter.estimate()[:2]
                self._estimate_iter = state.iteration
                state.finish(self._estimate)
            else:
                state.finish(None)

    def _phase_leader_election(self, state: IterationState) -> None:
        """Elect the detector nearest the prediction; track birth claims it."""
        detectors = state.detectors
        state.new_leader = self._elect_leader(detectors)
        if self.filter is None:
            # track birth at the first leader
            positions = self.scenario.deployment.positions
            s = self.scenario
            self.filter = SIRFilter(
                self._filter_dynamics, self.n_particles, rng=self.rng, roughening=0.2
            )
            centroid = positions[detectors].mean(axis=0)
            mean = np.array([centroid[0], centroid[1], *s.prior_velocity])
            cov = np.diag(
                [
                    s.prior_position_std**2,
                    s.prior_position_std**2,
                    s.prior_velocity_std**2,
                    s.prior_velocity_std**2,
                ]
            )
            self.filter.initialize(mean, cov)
            self.leader = state.new_leader
            state.new_leader = None  # a newborn track needs no hand-off

    def _phase_handoff(self, state: IterationState) -> None:
        """Route the compressed posterior to the new leader when it changed."""
        if state.new_leader is not None and state.new_leader != self.leader:
            self._handoff(self.leader, state.new_leader, state.iteration)
            self.leader = state.new_leader

    def _phase_collect(self, state: IterationState) -> None:
        state.observations = self._collect_measurements(
            state.ctx, self.leader, state.detectors
        )

    def _phase_sir_update(self, state: IterationState) -> None:
        self.filter.step(state.observations)
        self._estimate = self.filter.estimate()[:2]
        self._estimate_iter = state.iteration
        state.estimate = self._estimate
