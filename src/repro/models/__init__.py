"""Dynamic system and measurement models."""

from .base import MeasurementModel, TransitionModel
from .constant_velocity import ConstantVelocityModel
from .measurement import (
    BearingMeasurement,
    RangeBearingMeasurement,
    RangeMeasurement,
    RSSMeasurement,
    wrap_angle,
)
from .trajectory import Trajectory, random_turn_trajectory, straight_line_trajectory

__all__ = [
    "MeasurementModel", "TransitionModel",
    "ConstantVelocityModel",
    "BearingMeasurement", "RangeBearingMeasurement", "RangeMeasurement",
    "RSSMeasurement", "wrap_angle",
    "Trajectory", "random_turn_trajectory", "straight_line_trajectory",
]
