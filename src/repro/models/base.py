"""State-space model interfaces.

The tracking problem (paper Eq. 1) is a dynamic system

    x_k = f_k(x_{k-1}, v_{k-1})        (state transition)
    z_k = h_k(x_k, n_k)                (measurement)

Implementations expose *vectorized* operations over particle batches — the
hot path of every filter — plus single-state sampling for trajectory
generation.  All randomness flows through an explicit
``numpy.random.Generator``.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["TransitionModel", "MeasurementModel"]


@runtime_checkable
class TransitionModel(Protocol):
    """The ``f_k`` half of the dynamic system."""

    state_dim: int

    def propagate(self, states: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Draw x_k ~ p(x_k | x_{k-1}) for a batch of states.

        ``states`` is ``(n, state_dim)``; returns a new ``(n, state_dim)``
        array (inputs are never mutated).
        """
        ...

    def deterministic_step(self, states: np.ndarray) -> np.ndarray:
        """The noise-free part of the transition (used for prediction)."""
        ...


@runtime_checkable
class MeasurementModel(Protocol):
    """The ``h_k`` half of the dynamic system, with its likelihood."""

    def measure(
        self, state: np.ndarray, rng: np.random.Generator, sensor_position: np.ndarray | None = None
    ) -> float:
        """Draw one noisy scalar measurement of ``state``."""
        ...

    def log_likelihood(
        self, states: np.ndarray, z: float, sensor_position: np.ndarray | None = None
    ) -> np.ndarray:
        """log p(z | x) for a batch of states, shape ``(n,)``."""
        ...
