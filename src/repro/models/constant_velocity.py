"""Constant-velocity (CV) state-space model — the paper's dynamic system.

State x = (x, y, x', y')^T evolves as  x_k = PHI x_{k-1} + GAMMA v_{k-1}
(paper Eq. 5), with

    PHI = [[1, 0, dt, 0],        GAMMA = [[dt^2/2, 0],
           [0, 1, 0, dt],                 [0, dt^2/2],
           [0, 0, 1,  0],                 [1,      0],
           [0, 0, 0,  1]]                 [0,      1]]

and v ~ N(0, diag(sigma_x^2, sigma_y^2)) white acceleration noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ConstantVelocityModel"]


def _phi(dt: float) -> np.ndarray:
    return np.array(
        [
            [1.0, 0.0, dt, 0.0],
            [0.0, 1.0, 0.0, dt],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ]
    )


def _gamma(dt: float) -> np.ndarray:
    h = 0.5 * dt * dt
    return np.array(
        [
            [h, 0.0],
            [0.0, h],
            [1.0, 0.0],
            [0.0, 1.0],
        ]
    )


@dataclass(frozen=True)
class ConstantVelocityModel:
    """CV model with the paper's parameters (dt = 5 s, sigma_x = sigma_y = 0.05).

    Attributes
    ----------
    dt:
        Filter period in seconds (the paper's "time step of CDPF is 5 s").
    sigma_x, sigma_y:
        Acceleration noise standard deviations.
    """

    dt: float = 5.0
    sigma_x: float = 0.05
    sigma_y: float = 0.05
    state_dim: int = field(default=4, init=False)

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise ValueError(f"dt must be positive, got {self.dt}")
        if self.sigma_x < 0 or self.sigma_y < 0:
            raise ValueError("noise standard deviations must be non-negative")

    @property
    def phi(self) -> np.ndarray:
        """State transition matrix PHI."""
        return _phi(self.dt)

    @property
    def gamma(self) -> np.ndarray:
        """Noise gain matrix GAMMA."""
        return _gamma(self.dt)

    @property
    def process_noise_cov(self) -> np.ndarray:
        """Q = GAMMA diag(sigma^2) GAMMA^T, the full 4x4 process covariance."""
        g = self.gamma
        s = np.diag([self.sigma_x**2, self.sigma_y**2])
        return g @ s @ g.T

    def deterministic_step(self, states: np.ndarray) -> np.ndarray:
        """PHI x for a batch: positions advance by velocity * dt."""
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        if states.shape[1] != 4:
            raise ValueError(f"states must be (n, 4), got {states.shape}")
        return states @ self.phi.T

    def propagate(self, states: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Draw x_k = PHI x_{k-1} + GAMMA v for each particle (vectorized)."""
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        out = self.deterministic_step(states)
        v = rng.normal(0.0, [self.sigma_x, self.sigma_y], size=(states.shape[0], 2))
        out += v @ self.gamma.T
        return out

    def initial_particles(
        self,
        n: int,
        mean: np.ndarray,
        cov: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Draw the t = 0 particle cloud from a Gaussian prior N(mean, cov)."""
        mean = np.asarray(mean, dtype=np.float64)
        cov = np.asarray(cov, dtype=np.float64)
        if mean.shape != (4,) or cov.shape != (4, 4):
            raise ValueError("prior must be 4-dimensional (mean (4,), cov (4,4))")
        return rng.multivariate_normal(mean, cov, size=n)
