"""Target trajectory generation.

§VI-A: "A target crosses the surveillance field from the start point (0, 100)
with a constant speed 3 m/s.  At each time step of 1 s, the target turns a
random angle bounded by [-15deg, +15deg]."  The filter runs at a 5 s period,
so each PF iteration spans five 1 s motion sub-steps.

:class:`Trajectory` holds the fine-grained path plus the coarse per-iteration
view (positions, velocities, and the sub-path of each inter-iteration
interval) that the sensing models and filters consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Trajectory", "random_turn_trajectory", "straight_line_trajectory"]


@dataclass(frozen=True)
class Trajectory:
    """A target path sampled at sub-step resolution.

    Attributes
    ----------
    path:
        ``(n_sub + 1, 2)`` positions at every sub-step boundary, starting at
        the initial position.
    substep_dt:
        Sub-step duration in seconds.
    steps_per_iteration:
        Number of sub-steps per filter iteration.
    """

    path: np.ndarray
    substep_dt: float
    steps_per_iteration: int

    def __post_init__(self) -> None:
        path = np.asarray(self.path, dtype=np.float64)
        if path.ndim != 2 or path.shape[1] != 2 or path.shape[0] < 1:
            raise ValueError(f"path must be (m, 2) with m >= 1, got {path.shape}")
        if self.substep_dt <= 0 or self.steps_per_iteration <= 0:
            raise ValueError("substep_dt and steps_per_iteration must be positive")
        object.__setattr__(self, "path", path)

    @property
    def n_iterations(self) -> int:
        """Number of complete filter iterations the path covers."""
        return (self.path.shape[0] - 1) // self.steps_per_iteration

    @property
    def iteration_dt(self) -> float:
        return self.substep_dt * self.steps_per_iteration

    def position_at_iteration(self, k: int) -> np.ndarray:
        """True target position at the k-th filter instant (k = 0 is the start)."""
        self._check_iteration(k)
        return self.path[k * self.steps_per_iteration]

    def velocity_at_iteration(self, k: int) -> np.ndarray:
        """Average velocity over the sub-step ending at iteration k (finite diff)."""
        self._check_iteration(k)
        idx = k * self.steps_per_iteration
        if idx == 0:
            idx = 1  # use the first sub-step's velocity for the start instant
        return (self.path[idx] - self.path[idx - 1]) / self.substep_dt

    def interval_path(self, k: int) -> np.ndarray:
        """Sub-step polyline covering the interval (k-1, k], inclusive endpoints.

        This is what the instant detection model intersects with sensing
        disks.  ``k`` must be >= 1.
        """
        if k < 1:
            raise ValueError("interval_path needs k >= 1")
        self._check_iteration(k)
        s = self.steps_per_iteration
        return self.path[(k - 1) * s : k * s + 1]

    def iteration_positions(self) -> np.ndarray:
        """``(n_iterations + 1, 2)`` true positions at every filter instant."""
        s = self.steps_per_iteration
        return self.path[: self.n_iterations * s + 1 : s]

    def _check_iteration(self, k: int) -> None:
        if not 0 <= k <= self.n_iterations:
            raise ValueError(f"iteration {k} out of range [0, {self.n_iterations}]")


def random_turn_trajectory(
    n_iterations: int = 10,
    *,
    start: tuple[float, float] = (0.0, 100.0),
    speed: float = 3.0,
    initial_heading: float = 0.0,
    max_turn_deg: float = 15.0,
    substep_dt: float = 1.0,
    steps_per_iteration: int = 5,
    turn_mode: str = "jitter",
    rng: np.random.Generator,
) -> Trajectory:
    """The paper's target: constant speed, bounded random turn each sub-step.

    ``turn_mode``:

    * ``"jitter"`` (default) — each sub-step's heading is drawn independently
      in ``initial_heading +- max_turn_deg``.  This matches the paper's Fig. 4,
      whose trajectory stays within ~+-4 m of y = 100 over a 150 m crossing —
      only a bounded heading jitter produces that; see "random_walk" below.
    * ``"random_walk"`` — the turn *accumulates* (heading is a random walk).
      After 50 sub-steps the heading std is ~61 deg and the path wanders tens
      of meters, which contradicts Fig. 4; kept as a harder maneuvering
      scenario for the robustness ablations.
    """
    if n_iterations <= 0:
        raise ValueError(f"n_iterations must be positive, got {n_iterations}")
    if speed < 0:
        raise ValueError(f"speed must be non-negative, got {speed}")
    if max_turn_deg < 0:
        raise ValueError(f"max_turn_deg must be non-negative, got {max_turn_deg}")
    if turn_mode not in ("jitter", "random_walk"):
        raise ValueError(f"unknown turn_mode {turn_mode!r}")

    n_sub = n_iterations * steps_per_iteration
    turns = rng.uniform(-np.deg2rad(max_turn_deg), np.deg2rad(max_turn_deg), size=n_sub)
    if turn_mode == "random_walk":
        headings = initial_heading + np.cumsum(turns)
    else:
        headings = initial_heading + turns
    step = speed * substep_dt
    deltas = step * np.column_stack([np.cos(headings), np.sin(headings)])
    path = np.empty((n_sub + 1, 2))
    path[0] = start
    np.cumsum(deltas, axis=0, out=path[1:])
    path[1:] += np.asarray(start, dtype=np.float64)
    return Trajectory(path=path, substep_dt=substep_dt, steps_per_iteration=steps_per_iteration)


def straight_line_trajectory(
    n_iterations: int,
    *,
    start: tuple[float, float] = (0.0, 100.0),
    velocity: tuple[float, float] = (3.0, 0.0),
    substep_dt: float = 1.0,
    steps_per_iteration: int = 5,
) -> Trajectory:
    """Deterministic straight-line target (unit tests and analytic checks)."""
    if n_iterations <= 0:
        raise ValueError(f"n_iterations must be positive, got {n_iterations}")
    n_sub = n_iterations * steps_per_iteration
    t = np.arange(n_sub + 1)[:, None] * substep_dt
    path = np.asarray(start, dtype=np.float64) + t * np.asarray(velocity, dtype=np.float64)
    return Trajectory(path=path, substep_dt=substep_dt, steps_per_iteration=steps_per_iteration)
