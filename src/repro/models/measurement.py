"""Measurement models and their likelihoods.

The paper's evaluation uses bearings-only measurements (Eq. 5):

    z_k = arctan(y_k / x_k) + n_k,      n_k ~ N(0, sigma_n^2)

i.e. the bearing of the target as seen from the coordinate origin — the
classic single-observer benchmark [26].  For a *multi-node* WSN each
detecting sensor naturally measures the bearing from *its own position*
(otherwise co-located sensors carry zero extra information), so
:class:`BearingMeasurement` supports both reference conventions; the
distributed evaluation uses ``reference="node"`` and the single-filter sanity
benches use ``reference="origin"`` (see DESIGN.md, substitutions).

All likelihoods handle bearing wrap-around: the innovation is reduced to
(-pi, pi] before the Gaussian density is evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "wrap_angle",
    "BearingMeasurement",
    "RangeMeasurement",
    "RangeBearingMeasurement",
    "RSSMeasurement",
]

_LOG_2PI = float(np.log(2.0 * np.pi))


def wrap_angle(theta: np.ndarray) -> np.ndarray:
    """Reduce angles to the interval (-pi, pi]."""
    t = np.asarray(theta, dtype=np.float64)
    wrapped = np.mod(t + np.pi, 2.0 * np.pi) - np.pi
    # np.mod maps exact -pi to -pi; keep the half-open convention (-pi, pi].
    return np.where(wrapped == -np.pi, np.pi, wrapped)


def _positions_of(states: np.ndarray) -> np.ndarray:
    """Extract (x, y) from states that may be (n, 2) or (n, 4)."""
    states = np.atleast_2d(np.asarray(states, dtype=np.float64))
    if states.shape[1] not in (2, 4):
        raise ValueError(f"states must be (n, 2) or (n, 4), got {states.shape}")
    return states[:, :2]


def _gaussian_loglik(residual: np.ndarray, sigma: float) -> np.ndarray:
    if sigma <= 0:
        raise ValueError(f"noise std must be positive, got {sigma}")
    return -0.5 * (residual / sigma) ** 2 - np.log(sigma) - 0.5 * _LOG_2PI


@dataclass(frozen=True)
class BearingMeasurement:
    """Bearings-only measurement with selectable reference point.

    Parameters
    ----------
    noise_std:
        sigma_n, standard deviation of the additive bearing noise (radians).
    reference:
        ``"origin"`` — paper Eq. 5, bearing measured from (0, 0);
        ``"node"`` — bearing measured from the sensor's own position
        (``sensor_position`` must then be supplied to every call).
    """

    noise_std: float = 0.05
    reference: str = "node"

    def __post_init__(self) -> None:
        if self.noise_std <= 0:
            raise ValueError(f"noise_std must be positive, got {self.noise_std}")
        if self.reference not in ("origin", "node"):
            raise ValueError(f"reference must be 'origin' or 'node', got {self.reference!r}")

    def _reference_point(self, sensor_position: np.ndarray | None) -> np.ndarray:
        if self.reference == "origin":
            return np.zeros(2)
        if sensor_position is None:
            raise ValueError("reference='node' requires sensor_position")
        return np.asarray(sensor_position, dtype=np.float64)

    def true_value(self, state: np.ndarray, sensor_position: np.ndarray | None = None) -> float:
        """Noise-free bearing h(x)."""
        pos = _positions_of(state)[0]
        ref = self._reference_point(sensor_position)
        d = pos - ref
        return float(np.arctan2(d[1], d[0]))

    def measure(
        self,
        state: np.ndarray,
        rng: np.random.Generator,
        sensor_position: np.ndarray | None = None,
    ) -> float:
        z = self.true_value(state, sensor_position) + rng.normal(0.0, self.noise_std)
        return float(wrap_angle(z))

    def log_likelihood(
        self,
        states: np.ndarray,
        z: float,
        sensor_position: np.ndarray | None = None,
    ) -> np.ndarray:
        pos = _positions_of(states)
        ref = self._reference_point(sensor_position)
        d = pos - ref
        predicted = np.arctan2(d[:, 1], d[:, 0])
        residual = wrap_angle(z - predicted)
        return _gaussian_loglik(residual, self.noise_std)

    def likelihood(
        self,
        states: np.ndarray,
        z: float,
        sensor_position: np.ndarray | None = None,
    ) -> np.ndarray:
        return np.exp(self.log_likelihood(states, z, sensor_position))

    def log_kernel(
        self,
        states: np.ndarray,
        z: float,
        sensor_position: np.ndarray | None = None,
        *,
        noise_std: float | None = None,
    ) -> np.ndarray:
        """log of the normalized kernel exp(-r^2 / 2 sigma^2), always <= 0.

        The distributed trackers multiply many per-sensor factors into one
        particle weight; the kernel form keeps each factor <= 1 so products
        can only underflow (toward a drop), never overflow.  States whose
        position coincides with the sensor get a flat factor (log 0 = 0): a
        bearing constrains direction only, and direction is undefined at the
        sensor itself.  ``noise_std`` overrides the model's sigma (used for
        discretization-aware inflation on node-hosted particles).
        """
        sigma = self.noise_std if noise_std is None else float(noise_std)
        if sigma <= 0:
            raise ValueError(f"noise_std must be positive, got {sigma}")
        pos = _positions_of(states)
        ref = self._reference_point(sensor_position)
        d = pos - ref
        r2 = np.sum(d * d, axis=1)
        predicted = np.arctan2(d[:, 1], d[:, 0])
        residual = wrap_angle(z - predicted)
        out = -0.5 * (residual / sigma) ** 2
        return np.where(r2 < 1e-12, 0.0, out)

    def reference_point(self, sensor_position: np.ndarray | None = None) -> np.ndarray:
        """The point bearings are measured from (origin, or the sensor itself)."""
        return self._reference_point(sensor_position)


@dataclass(frozen=True)
class RangeMeasurement:
    """Range (distance) measurement from a sensor with additive Gaussian noise."""

    noise_std: float = 0.5

    def __post_init__(self) -> None:
        if self.noise_std <= 0:
            raise ValueError(f"noise_std must be positive, got {self.noise_std}")

    def true_value(self, state: np.ndarray, sensor_position: np.ndarray) -> float:
        pos = _positions_of(state)[0]
        d = pos - np.asarray(sensor_position, dtype=np.float64)
        return float(np.sqrt(d @ d))

    def measure(
        self,
        state: np.ndarray,
        rng: np.random.Generator,
        sensor_position: np.ndarray | None = None,
    ) -> float:
        if sensor_position is None:
            raise ValueError("RangeMeasurement requires sensor_position")
        return max(0.0, self.true_value(state, sensor_position) + rng.normal(0.0, self.noise_std))

    def log_likelihood(
        self,
        states: np.ndarray,
        z: float,
        sensor_position: np.ndarray | None = None,
    ) -> np.ndarray:
        if sensor_position is None:
            raise ValueError("RangeMeasurement requires sensor_position")
        pos = _positions_of(states)
        d = pos - np.asarray(sensor_position, dtype=np.float64)
        predicted = np.sqrt(np.sum(d * d, axis=1))
        return _gaussian_loglik(z - predicted, self.noise_std)

    def likelihood(
        self, states: np.ndarray, z: float, sensor_position: np.ndarray | None = None
    ) -> np.ndarray:
        return np.exp(self.log_likelihood(states, z, sensor_position))


@dataclass(frozen=True)
class RangeBearingMeasurement:
    """Joint range + bearing measurement (2-vector ``z``)."""

    range_std: float = 0.5
    bearing_std: float = 0.05

    def __post_init__(self) -> None:
        # frozen dataclass: use object.__setattr__ for derived members
        object.__setattr__(self, "_range", RangeMeasurement(self.range_std))
        object.__setattr__(
            self, "_bearing", BearingMeasurement(self.bearing_std, reference="node")
        )

    def measure(
        self,
        state: np.ndarray,
        rng: np.random.Generator,
        sensor_position: np.ndarray | None = None,
    ) -> np.ndarray:
        if sensor_position is None:
            raise ValueError("RangeBearingMeasurement requires sensor_position")
        return np.array(
            [
                self._range.measure(state, rng, sensor_position),
                self._bearing.measure(state, rng, sensor_position),
            ]
        )

    def log_likelihood(
        self,
        states: np.ndarray,
        z: np.ndarray,
        sensor_position: np.ndarray | None = None,
    ) -> np.ndarray:
        z = np.asarray(z, dtype=np.float64)
        if z.shape != (2,):
            raise ValueError(f"z must be a (range, bearing) pair, got shape {z.shape}")
        return self._range.log_likelihood(states, float(z[0]), sensor_position) + (
            self._bearing.log_likelihood(states, float(z[1]), sensor_position)
        )

    def likelihood(
        self, states: np.ndarray, z: np.ndarray, sensor_position: np.ndarray | None = None
    ) -> np.ndarray:
        return np.exp(self.log_likelihood(states, z, sensor_position))


@dataclass(frozen=True)
class RSSMeasurement:
    """Received-signal-strength measurement, log-distance path-loss model.

    z = p0 - 10 * eta * log10(max(d, d_min)) + noise.  Used by the adaptive
    initial-weight option of particle creation (§III-B: weight "adaptively
    determined according to the received signal strength").
    """

    p0_dbm: float = -40.0
    path_loss_exponent: float = 2.5
    noise_std: float = 2.0
    d_min: float = 0.1

    def __post_init__(self) -> None:
        if self.noise_std <= 0 or self.path_loss_exponent <= 0 or self.d_min <= 0:
            raise ValueError("noise_std, path_loss_exponent, d_min must be positive")

    def true_value(self, state: np.ndarray, sensor_position: np.ndarray) -> float:
        pos = _positions_of(state)[0]
        d = pos - np.asarray(sensor_position, dtype=np.float64)
        dist = max(float(np.sqrt(d @ d)), self.d_min)
        return self.p0_dbm - 10.0 * self.path_loss_exponent * np.log10(dist)

    def measure(
        self,
        state: np.ndarray,
        rng: np.random.Generator,
        sensor_position: np.ndarray | None = None,
    ) -> float:
        if sensor_position is None:
            raise ValueError("RSSMeasurement requires sensor_position")
        return self.true_value(state, sensor_position) + float(rng.normal(0.0, self.noise_std))

    def log_likelihood(
        self,
        states: np.ndarray,
        z: float,
        sensor_position: np.ndarray | None = None,
    ) -> np.ndarray:
        if sensor_position is None:
            raise ValueError("RSSMeasurement requires sensor_position")
        pos = _positions_of(states)
        d = pos - np.asarray(sensor_position, dtype=np.float64)
        dist = np.maximum(np.sqrt(np.sum(d * d, axis=1)), self.d_min)
        predicted = self.p0_dbm - 10.0 * self.path_loss_exponent * np.log10(dist)
        return _gaussian_loglik(z - predicted, self.noise_std)

    def likelihood(
        self, states: np.ndarray, z: float, sensor_position: np.ndarray | None = None
    ) -> np.ndarray:
        return np.exp(self.log_likelihood(states, z, sensor_position))
