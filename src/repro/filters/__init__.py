"""Generic particle-filter substrate (SIS/SIR, resampling, diagnostics, baselines)."""

from .diagnostics import (
    FilterHealth,
    effective_sample_size,
    health_of,
    max_weight_ratio,
    unique_ancestors,
    weight_entropy,
)
from .gmm import GaussianMixture, fit_gmm
from .kalman import ExtendedKalmanFilter, KalmanFilter, bearing_jacobian, range_jacobian
from .kld import KLDSampler, kld_bound
from .particles import ParticleSet, normalize_log_weights
from .resampling import (
    RESAMPLERS,
    get_resampler,
    multinomial_resample,
    residual_resample,
    stratified_resample,
    systematic_resample,
)
from .sir import Observation, SIRFilter, SISFilter, joint_log_likelihood

__all__ = [
    "FilterHealth", "effective_sample_size", "health_of", "max_weight_ratio",
    "unique_ancestors", "weight_entropy",
    "GaussianMixture", "fit_gmm",
    "ExtendedKalmanFilter", "KalmanFilter", "bearing_jacobian", "range_jacobian",
    "KLDSampler", "kld_bound",
    "ParticleSet", "normalize_log_weights",
    "RESAMPLERS", "get_resampler", "multinomial_resample", "residual_resample",
    "stratified_resample", "systematic_resample",
    "Observation", "SIRFilter", "SISFilter", "joint_log_likelihood",
]
