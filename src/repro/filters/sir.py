"""Sequential importance sampling (SIS) and the SIR bootstrap filter.

This is the *centralized* generic particle filter of paper §II-A — the four
steps in their classic order:

1. prediction — draw particles from the importance density;
2. update — weight by the likelihood and normalize;
3. resampling — optional (SIR: every iteration);
4. estimation — weighted mean.

SIR is obtained by choosing the prior ``p(x_k | x_{k-1})`` as the importance
density and resampling every iteration — exactly the basis the paper uses for
all four simulated algorithms (§VI-A).

Measurements arrive as a sequence of ``(model, z, sensor_position)`` triples;
the joint likelihood over conditionally independent sensors is the product of
the per-sensor likelihoods (sum in log space).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..kernels.likelihood import batch_bearing_log_likelihood
from ..models.base import TransitionModel
from ..models.measurement import BearingMeasurement
from .particles import ParticleSet, normalize_log_weights
from .resampling import get_resampler

__all__ = ["Observation", "SIRFilter", "SISFilter", "joint_log_likelihood"]


@dataclass(frozen=True)
class Observation:
    """One sensor's measurement: the model that produced it, z, and where from."""

    model: object  # MeasurementModel protocol
    z: float | np.ndarray
    sensor_position: np.ndarray | None = None


def joint_log_likelihood(states: np.ndarray, observations: Sequence[Observation]) -> np.ndarray:
    """Sum of per-sensor log-likelihoods (conditional independence across sensors).

    All-bearing observation batches (the common CPF/DPF case) evaluate as one
    ``(n_obs, n_particles)`` kernel matrix whose rows accumulate in the same
    sequential order as the scalar loop — bit-identical, one pass.
    """
    states_2d = np.atleast_2d(states)
    n = states_2d.shape[0]
    total = np.zeros(n)
    if len(observations) > 1 and all(
        type(obs.model) is BearingMeasurement for obs in observations
    ):
        refs = np.vstack(
            [obs.model.reference_point(obs.sensor_position) for obs in observations]
        )
        zs = np.array([obs.z for obs in observations], dtype=np.float64)
        sigmas = np.array([obs.model.noise_std for obs in observations])
        matrix = batch_bearing_log_likelihood(states_2d[:, :2], zs, refs, sigmas)
        for row in matrix:
            total += row
        return total
    for obs in observations:
        total += obs.model.log_likelihood(states, obs.z, obs.sensor_position)
    return total


class SISFilter:
    """Sequential importance sampling with a pluggable proposal.

    ``proposal`` draws new states given old states and the observation batch;
    ``proposal_log_density`` evaluates q(x_k | x_{k-1}, z_k) so the importance
    correction ``p * likelihood / q`` is applied exactly.  The default
    proposal is the prior (which cancels the transition density and recovers
    the bootstrap weight update ``w *= likelihood``).
    """

    def __init__(
        self,
        transition: TransitionModel,
        n_particles: int,
        *,
        rng: np.random.Generator,
        resampler: str = "systematic",
        ess_threshold_ratio: float | None = 0.5,
        roughening: float = 0.0,
    ) -> None:
        if n_particles <= 0:
            raise ValueError(f"n_particles must be positive, got {n_particles}")
        if ess_threshold_ratio is not None and not 0.0 < ess_threshold_ratio <= 1.0:
            raise ValueError(
                f"ess_threshold_ratio must be in (0, 1] or None, got {ess_threshold_ratio}"
            )
        if roughening < 0.0:
            raise ValueError(f"roughening must be non-negative, got {roughening}")
        self.transition = transition
        self.n_particles = n_particles
        self.rng = rng
        self.resample = get_resampler(resampler)
        self.ess_threshold_ratio = ess_threshold_ratio
        #: Gordon-style roughening constant K: after each resampling pass,
        #: each state dimension is jittered with std ``K * range * n^(-1/d)``.
        #: Zero disables.  Sharp, many-sensor likelihoods collapse the ESS of
        #: a plain SIR filter to ~1; roughening restores particle diversity
        #: (Gordon, Salmond & Smith 1993, §4.2).
        self.roughening = roughening
        self.particles: ParticleSet | None = None
        self.resample_count = 0
        self.iteration = 0

    # -- lifecycle ---------------------------------------------------------

    def initialize(self, mean: np.ndarray, cov: np.ndarray) -> None:
        """Draw the initial cloud from a Gaussian prior N(mean, cov)."""
        mean = np.asarray(mean, dtype=np.float64)
        cov = np.asarray(cov, dtype=np.float64)
        states = self.rng.multivariate_normal(mean, cov, size=self.n_particles)
        self.particles = ParticleSet(states, copy=False)
        self.iteration = 0

    def initialize_from(self, particles: ParticleSet) -> None:
        self.particles = particles.copy()
        self.iteration = 0

    def _require_particles(self) -> ParticleSet:
        if self.particles is None:
            raise RuntimeError("filter not initialized; call initialize() first")
        return self.particles

    # -- the four steps ------------------------------------------------------

    def predict(self) -> None:
        """Step 1: draw from the importance density (prior by default)."""
        p = self._require_particles()
        new_states = self.transition.propagate(p.states, self.rng)
        self.particles = ParticleSet(new_states, p.weights.copy(), copy=False)

    def update(self, observations: Sequence[Observation]) -> None:
        """Step 2: multiply in the joint likelihood and renormalize."""
        p = self._require_particles()
        if not observations:
            return  # no information this iteration; weights unchanged
        log_lik = joint_log_likelihood(p.states, observations)
        with np.errstate(divide="ignore"):
            log_w = np.log(p.weights) + log_lik
        weights = normalize_log_weights(log_w)
        self.particles = ParticleSet(p.states, weights, copy=False)

    def maybe_resample(self) -> bool:
        """Step 3: resample when ESS falls below the threshold.  Returns True if done."""
        p = self._require_particles()
        if self.ess_threshold_ratio is None:
            return False
        if p.effective_sample_size() >= self.ess_threshold_ratio * p.n:
            return False
        self.force_resample()
        return True

    def force_resample(self) -> None:
        p = self._require_particles()
        idx = self.resample(p.weights, self.n_particles, rng=self.rng)
        selected = p.select(idx)
        if self.roughening > 0.0:
            # spread of the PRE-resampling population: the selected set can
            # be a single duplicated ancestor with zero spread
            spread = p.states.max(axis=0) - p.states.min(axis=0)
            scale = self.roughening * spread * selected.n ** (-1.0 / selected.dim)
            jitter = self.rng.normal(0.0, 1.0, size=selected.states.shape) * scale
            selected = ParticleSet(selected.states + jitter, selected.weights, copy=False)
        self.particles = selected
        self.resample_count += 1

    def estimate(self) -> np.ndarray:
        """Step 4: the weighted-mean state estimate."""
        return self._require_particles().mean()

    # -- checkpoint protocol -------------------------------------------------

    def snapshot(self) -> dict:
        """The cloud and counters.  The RNG is deliberately excluded: the
        owning tracker restores its stream exactly once (CPF/DPF share one
        generator object between tracker and filter)."""
        particles = self.particles
        return {
            "particles": (
                None
                if particles is None
                else {
                    "states": particles.states.copy(),
                    "weights": particles.weights.copy(),
                }
            ),
            "resample_count": int(self.resample_count),
            "iteration": int(self.iteration),
        }

    def restore(self, state: dict) -> None:
        cloud = state["particles"]
        self.particles = (
            None
            if cloud is None
            else ParticleSet(
                np.asarray(cloud["states"], dtype=np.float64),
                np.asarray(cloud["weights"], dtype=np.float64),
            )
        )
        self.resample_count = int(state["resample_count"])
        self.iteration = int(state["iteration"])

    def step(self, observations: Sequence[Observation]) -> np.ndarray:
        """One full iteration; returns the state estimate."""
        self.predict()
        self.update(observations)
        self.maybe_resample()
        self.iteration += 1
        return self.estimate()


class SIRFilter(SISFilter):
    """Sampling-importance-resampling: prior proposal + resample every step.

    The paper adopts SIR as the basis of all four evaluated algorithms.
    """

    def __init__(
        self,
        transition: TransitionModel,
        n_particles: int,
        *,
        rng: np.random.Generator,
        resampler: str = "systematic",
        roughening: float = 0.0,
    ) -> None:
        super().__init__(
            transition,
            n_particles,
            rng=rng,
            resampler=resampler,
            ess_threshold_ratio=None,  # resampling is unconditional for SIR
            roughening=roughening,
        )

    def step(self, observations: Sequence[Observation]) -> np.ndarray:
        self.predict()
        self.update(observations)
        self.force_resample()
        self.iteration += 1
        return self.estimate()
