"""Resampling schemes for particle filters.

All schemes are pure functions ``(weights, n_out, rng) -> index array``:
they return the ancestor index of each output particle, so they compose with
any particle storage.  Implemented schemes (all O(n) after weight
normalization) and their variance ordering follow Douc & Cappe (2005):

* ``multinomial`` — i.i.d. draws from the weight distribution (highest
  variance, the textbook baseline);
* ``stratified`` — one uniform draw per stratum of size 1/n;
* ``systematic`` — a single uniform offset shared by all strata (lowest
  variance in practice; the default everywhere in this library);
* ``residual`` — deterministic copies of floor(n*w) plus multinomial on the
  residual fraction.

The unbiasedness property — E[#offspring of i] = n * w_i — is asserted by a
hypothesis property test for every scheme.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = [
    "multinomial_resample",
    "stratified_resample",
    "systematic_resample",
    "residual_resample",
    "get_resampler",
    "RESAMPLERS",
]


def _normalized(weights: np.ndarray) -> np.ndarray:
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1 or w.size == 0:
        raise ValueError(f"weights must be a non-empty 1-D array, got shape {w.shape}")
    if (w < 0).any() or not np.isfinite(w).all():
        raise ValueError("weights must be finite and non-negative")
    total = w.sum()
    if total <= 0:
        raise ValueError("weights must not all be zero")
    return w / total


def _inverse_cdf_lookup(w: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Map sorted points in [0, 1) to ancestor indices via the weight CDF."""
    cdf = np.cumsum(w)
    cdf[-1] = 1.0  # guard against floating-point undershoot
    return np.searchsorted(cdf, points, side="right").astype(np.intp)


def multinomial_resample(
    weights: np.ndarray, n_out: int | None = None, *, rng: np.random.Generator
) -> np.ndarray:
    """n_out i.i.d. categorical draws from the normalized weights."""
    w = _normalized(weights)
    n = n_out if n_out is not None else w.size
    if n <= 0:
        raise ValueError(f"n_out must be positive, got {n}")
    points = np.sort(rng.uniform(size=n))
    return _inverse_cdf_lookup(w, points)


def stratified_resample(
    weights: np.ndarray, n_out: int | None = None, *, rng: np.random.Generator
) -> np.ndarray:
    """One uniform draw inside each of n_out equal strata of [0, 1)."""
    w = _normalized(weights)
    n = n_out if n_out is not None else w.size
    if n <= 0:
        raise ValueError(f"n_out must be positive, got {n}")
    points = (np.arange(n) + rng.uniform(size=n)) / n
    return _inverse_cdf_lookup(w, points)


def systematic_resample(
    weights: np.ndarray, n_out: int | None = None, *, rng: np.random.Generator
) -> np.ndarray:
    """A single uniform offset replicated across all strata (default scheme)."""
    w = _normalized(weights)
    n = n_out if n_out is not None else w.size
    if n <= 0:
        raise ValueError(f"n_out must be positive, got {n}")
    points = (np.arange(n) + rng.uniform()) / n
    return _inverse_cdf_lookup(w, points)


def residual_resample(
    weights: np.ndarray, n_out: int | None = None, *, rng: np.random.Generator
) -> np.ndarray:
    """Deterministic floor(n*w) copies + multinomial draws on the residuals."""
    w = _normalized(weights)
    n = n_out if n_out is not None else w.size
    if n <= 0:
        raise ValueError(f"n_out must be positive, got {n}")
    scaled = n * w
    copies = np.floor(scaled).astype(np.intp)
    deterministic = np.repeat(np.arange(w.size, dtype=np.intp), copies)
    n_residual = n - deterministic.size
    if n_residual == 0:
        return deterministic
    residual = scaled - copies
    res_total = residual.sum()
    if res_total <= 0:  # exact integer weights: pad with top-weight ancestors
        pad = np.argsort(w)[::-1][:n_residual].astype(np.intp)
        return np.concatenate([deterministic, pad])
    points = np.sort(rng.uniform(size=n_residual))
    extra = _inverse_cdf_lookup(residual / res_total, points)
    return np.concatenate([deterministic, extra])


Resampler = Callable[..., np.ndarray]

RESAMPLERS: dict[str, Resampler] = {
    "multinomial": multinomial_resample,
    "stratified": stratified_resample,
    "systematic": systematic_resample,
    "residual": residual_resample,
}


def get_resampler(name: str) -> Resampler:
    """Look up a resampling scheme by name (raises with the valid options)."""
    try:
        return RESAMPLERS[name]
    except KeyError:
        raise ValueError(
            f"unknown resampler {name!r}; valid options: {sorted(RESAMPLERS)}"
        ) from None
