"""Kalman and extended Kalman filters.

The paper's related work (§VII, [27]) frames the Kalman filter as the optimal
Bayesian estimator under linear-Gaussian assumptions; particle filters
approximate the optimum when those assumptions break (bearings-only
measurements are nonlinear).  We implement both:

* :class:`KalmanFilter` — exact linear-Gaussian filter; the reference
  solution the PF substrate is validated against in tests (a bootstrap PF on
  a linear-Gaussian problem must converge to the KF posterior).
* :class:`ExtendedKalmanFilter` — first-order linearization for nonlinear
  scalar measurements (bearing / range), used as an extra baseline bench.
"""

from __future__ import annotations

import numpy as np

__all__ = ["KalmanFilter", "ExtendedKalmanFilter", "bearing_jacobian", "range_jacobian"]


def _validate_square(m: np.ndarray, d: int, name: str) -> np.ndarray:
    m = np.asarray(m, dtype=np.float64)
    if m.shape != (d, d):
        raise ValueError(f"{name} must be ({d}, {d}), got {m.shape}")
    return m


class KalmanFilter:
    """Standard discrete-time Kalman filter ``x' = F x + w, z = H x + v``."""

    def __init__(self, f: np.ndarray, q: np.ndarray, h: np.ndarray, r: np.ndarray) -> None:
        f = np.asarray(f, dtype=np.float64)
        if f.ndim != 2 or f.shape[0] != f.shape[1]:
            raise ValueError(f"F must be square, got {f.shape}")
        d = f.shape[0]
        h = np.atleast_2d(np.asarray(h, dtype=np.float64))
        if h.shape[1] != d:
            raise ValueError(f"H must have {d} columns, got {h.shape}")
        m = h.shape[0]
        self.f = f
        self.q = _validate_square(q, d, "Q")
        self.h = h
        self.r = _validate_square(np.atleast_2d(r), m, "R")
        self.state_dim = d
        self.meas_dim = m
        self.x: np.ndarray | None = None
        self.p: np.ndarray | None = None

    def initialize(self, mean: np.ndarray, cov: np.ndarray) -> None:
        self.x = np.asarray(mean, dtype=np.float64).copy()
        self.p = _validate_square(cov, self.state_dim, "P0").copy()

    def _require(self) -> tuple[np.ndarray, np.ndarray]:
        if self.x is None or self.p is None:
            raise RuntimeError("filter not initialized")
        return self.x, self.p

    def predict(self) -> None:
        x, p = self._require()
        self.x = self.f @ x
        self.p = self.f @ p @ self.f.T + self.q

    def update(self, z: np.ndarray) -> None:
        x, p = self._require()
        z = np.atleast_1d(np.asarray(z, dtype=np.float64))
        innovation = z - self.h @ x
        s = self.h @ p @ self.h.T + self.r
        k = p @ self.h.T @ np.linalg.solve(s, np.eye(self.meas_dim))
        self.x = x + k @ innovation
        # Joseph form: numerically stable covariance update.
        ikh = np.eye(self.state_dim) - k @ self.h
        self.p = ikh @ p @ ikh.T + k @ self.r @ k.T

    def step(self, z: np.ndarray) -> np.ndarray:
        self.predict()
        self.update(z)
        return self.x.copy()


def bearing_jacobian(state: np.ndarray, sensor_position: np.ndarray) -> np.ndarray:
    """d arctan2(y - sy, x - sx) / d state, for a 4-D CV state (1 x 4 row)."""
    dx = state[0] - sensor_position[0]
    dy = state[1] - sensor_position[1]
    r2 = dx * dx + dy * dy
    if r2 == 0.0:
        raise FloatingPointError("bearing Jacobian undefined at the sensor position")
    return np.array([[-dy / r2, dx / r2, 0.0, 0.0]])


def range_jacobian(state: np.ndarray, sensor_position: np.ndarray) -> np.ndarray:
    """d ||pos - sensor|| / d state (1 x 4 row)."""
    dx = state[0] - sensor_position[0]
    dy = state[1] - sensor_position[1]
    r = np.hypot(dx, dy)
    if r == 0.0:
        raise FloatingPointError("range Jacobian undefined at the sensor position")
    return np.array([[dx / r, dy / r, 0.0, 0.0]])


class ExtendedKalmanFilter:
    """EKF for scalar nonlinear measurements over a linear CV transition.

    ``measure_fn(state, sensor_position) -> float`` and
    ``jacobian_fn(state, sensor_position) -> (1, d)`` supply the measurement
    model; multiple sensors per step are fused sequentially.
    """

    def __init__(
        self,
        f: np.ndarray,
        q: np.ndarray,
        measure_fn,
        jacobian_fn,
        r_scalar: float,
        *,
        angular: bool = False,
    ) -> None:
        f = np.asarray(f, dtype=np.float64)
        if f.ndim != 2 or f.shape[0] != f.shape[1]:
            raise ValueError(f"F must be square, got {f.shape}")
        if r_scalar <= 0:
            raise ValueError(f"r_scalar must be positive, got {r_scalar}")
        self.f = f
        self.q = _validate_square(q, f.shape[0], "Q")
        self.measure_fn = measure_fn
        self.jacobian_fn = jacobian_fn
        self.r = float(r_scalar)
        self.angular = angular
        self.state_dim = f.shape[0]
        self.x: np.ndarray | None = None
        self.p: np.ndarray | None = None

    def initialize(self, mean: np.ndarray, cov: np.ndarray) -> None:
        self.x = np.asarray(mean, dtype=np.float64).copy()
        self.p = _validate_square(cov, self.state_dim, "P0").copy()

    def predict(self) -> None:
        if self.x is None or self.p is None:
            raise RuntimeError("filter not initialized")
        self.x = self.f @ self.x
        self.p = self.f @ self.p @ self.f.T + self.q

    def update(self, z: float, sensor_position: np.ndarray) -> None:
        if self.x is None or self.p is None:
            raise RuntimeError("filter not initialized")
        h_row = self.jacobian_fn(self.x, sensor_position)
        predicted = self.measure_fn(self.x, sensor_position)
        innovation = z - predicted
        if self.angular:
            innovation = float(np.mod(innovation + np.pi, 2 * np.pi) - np.pi)
        s = float((h_row @ self.p @ h_row.T)[0, 0]) + self.r
        k = (self.p @ h_row.T) / s
        self.x = self.x + (k * innovation).ravel()
        ikh = np.eye(self.state_dim) - k @ h_row
        self.p = ikh @ self.p @ ikh.T + k @ k.T * self.r

    def step(self, observations: list[tuple[float, np.ndarray]]) -> np.ndarray:
        """One iteration: predict, then fuse each (z, sensor_position) in turn."""
        self.predict()
        for z, pos in observations:
            self.update(z, pos)
        return self.x.copy()
