"""Degeneracy and health diagnostics for particle populations.

These are the quantities filter practitioners watch (Arulampalam et al. [3]):
effective sample size, weight entropy, the count of surviving ancestors, and
a combined :class:`FilterHealth` snapshot used by the integration tests to
assert that the distributed filters stay alive along the whole trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .particles import ParticleSet

__all__ = [
    "effective_sample_size",
    "weight_entropy",
    "max_weight_ratio",
    "unique_ancestors",
    "FilterHealth",
    "health_of",
]


def _norm(weights: np.ndarray) -> np.ndarray:
    w = np.asarray(weights, dtype=np.float64)
    if w.size == 0:
        raise ValueError("empty weight vector")
    total = w.sum()
    if total <= 0:
        raise ValueError("weights must have positive total")
    return w / total


def effective_sample_size(weights: np.ndarray) -> float:
    """N_eff = 1 / sum(w^2) over normalized weights; in [1, n]."""
    w = _norm(weights)
    return float(1.0 / np.sum(w * w))


def weight_entropy(weights: np.ndarray) -> float:
    """Shannon entropy (nats) of the normalized weights; max = log(n)."""
    w = _norm(weights)
    nz = w[w > 0]
    return float(-np.sum(nz * np.log(nz)))


def max_weight_ratio(weights: np.ndarray) -> float:
    """max(w) / (1/n): 1 means perfectly uniform, n means total collapse."""
    w = _norm(weights)
    return float(w.max() * w.size)


def unique_ancestors(indices: np.ndarray) -> int:
    """Number of distinct parents that survived a resampling pass."""
    return int(np.unique(np.asarray(indices)).size)


@dataclass(frozen=True)
class FilterHealth:
    """A point-in-time health snapshot of a particle population."""

    n_particles: int
    ess: float
    ess_ratio: float
    entropy: float
    entropy_ratio: float
    max_weight_ratio: float

    @property
    def degenerate(self) -> bool:
        """Rule of thumb: ESS below 10 % of n signals severe degeneracy."""
        return self.ess_ratio < 0.1


def health_of(particles: ParticleSet) -> FilterHealth:
    """Compute a :class:`FilterHealth` snapshot for a particle set."""
    n = particles.n
    ess = effective_sample_size(particles.weights)
    ent = weight_entropy(particles.weights)
    max_ent = np.log(n) if n > 1 else 1.0
    return FilterHealth(
        n_particles=n,
        ess=ess,
        ess_ratio=ess / n,
        entropy=ent,
        entropy_ratio=ent / max_ent,
        max_weight_ratio=max_weight_ratio(particles.weights),
    )
