"""Weighted particle sets in structure-of-arrays form.

Particles are stored as one ``(n, d)`` state array plus one ``(n,)`` weight
array (SoA, not a list of particle objects) so every filter step is a single
vectorized numpy expression — the layout the hpc guides prescribe for hot
loops.  Weights are kept in *linear* space with explicit normalization; the
likelihood path works in log space and converts with a max-shift to avoid
underflow.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ParticleSet", "normalize_log_weights"]


def normalize_log_weights(log_w: np.ndarray) -> np.ndarray:
    """Exponentiate and normalize log-weights stably (max-shift trick).

    Returns linear weights summing to one.  All ``-inf`` inputs (every
    particle impossible) raise, since silently returning NaNs would poison
    downstream estimates.
    """
    log_w = np.asarray(log_w, dtype=np.float64)
    if log_w.size == 0:
        raise ValueError("cannot normalize an empty weight vector")
    m = np.max(log_w)
    if not np.isfinite(m):
        raise FloatingPointError("all particle log-weights are -inf (total degeneracy)")
    w = np.exp(log_w - m)
    return w / w.sum()


class ParticleSet:
    """A batch of weighted particles.

    Parameters
    ----------
    states:
        ``(n, d)`` state array (copied defensively unless ``copy=False``).
    weights:
        ``(n,)`` non-negative weights; pass ``None`` for uniform.

    Notes
    -----
    The class is intentionally small: it owns the invariants (shapes match,
    weights non-negative and finite) and the handful of operations every
    filter needs — normalization, moment estimates, and ESS.  Resampling
    lives in :mod:`repro.filters.resampling` as pure functions on index
    arrays so schemes are interchangeable and independently testable.
    """

    __slots__ = ("states", "weights")

    def __init__(
        self,
        states: np.ndarray,
        weights: np.ndarray | None = None,
        *,
        copy: bool = True,
    ) -> None:
        states = np.array(states, dtype=np.float64, copy=copy)
        if states.ndim == 1:
            states = states[None, :]
        if states.ndim != 2 or states.shape[0] == 0:
            raise ValueError(f"states must be a non-empty (n, d) array, got {states.shape}")
        if not np.isfinite(states).all():
            raise ValueError("particle states must be finite")
        n = states.shape[0]
        if weights is None:
            weights = np.full(n, 1.0 / n)
        else:
            weights = np.array(weights, dtype=np.float64, copy=copy)
            if weights.shape != (n,):
                raise ValueError(f"weights must have shape ({n},), got {weights.shape}")
            if not np.isfinite(weights).all():
                raise ValueError("weights must be finite")
            if (weights < 0).any():
                raise ValueError("weights must be non-negative")
            if weights.sum() == 0.0:
                raise ValueError("weights must not all be zero")
        self.states = states
        self.weights = weights

    # -- basic views ---------------------------------------------------

    def __len__(self) -> int:
        return self.states.shape[0]

    @property
    def n(self) -> int:
        return self.states.shape[0]

    @property
    def dim(self) -> int:
        return self.states.shape[1]

    @property
    def total_weight(self) -> float:
        return float(self.weights.sum())

    @property
    def is_normalized(self) -> bool:
        return bool(np.isclose(self.total_weight, 1.0, rtol=0, atol=1e-9))

    # -- operations ------------------------------------------------------

    def normalized(self) -> "ParticleSet":
        """Return a set with weights scaled to sum to one."""
        total = self.total_weight
        if total <= 0.0:
            raise FloatingPointError("total weight is zero; cannot normalize")
        return ParticleSet(self.states, self.weights / total, copy=False)

    def scaled(self, factor: float) -> "ParticleSet":
        """Return a set with every weight multiplied by ``factor`` (> 0)."""
        if factor <= 0 or not np.isfinite(factor):
            raise ValueError(f"factor must be positive and finite, got {factor}")
        return ParticleSet(self.states.copy(), self.weights * factor, copy=False)

    def reweighted(self, new_weights: np.ndarray) -> "ParticleSet":
        """Return a set with the same states and the given weights."""
        return ParticleSet(self.states.copy(), np.asarray(new_weights, dtype=np.float64))

    def mean(self) -> np.ndarray:
        """Weighted mean state (the PF point estimate x_hat)."""
        w = self.weights / self.total_weight
        return w @ self.states

    def covariance(self) -> np.ndarray:
        """Weighted sample covariance of the states."""
        w = self.weights / self.total_weight
        mu = w @ self.states
        centered = self.states - mu
        return (centered * w[:, None]).T @ centered

    def effective_sample_size(self) -> float:
        """N_eff = 1 / sum(w_norm^2): the standard degeneracy diagnostic."""
        w = self.weights / self.total_weight
        return float(1.0 / np.sum(w * w))

    def select(self, indices: np.ndarray) -> "ParticleSet":
        """Gather particles by index with uniform weights (post-resampling set)."""
        indices = np.asarray(indices, dtype=np.intp)
        if indices.size == 0:
            raise ValueError("cannot select an empty particle set")
        states = self.states[indices]
        return ParticleSet(states, np.full(indices.size, 1.0 / indices.size), copy=False)

    def subset(self, mask_or_indices: np.ndarray) -> "ParticleSet":
        """Gather particles keeping their (unrenormalized) weights."""
        sub_states = self.states[mask_or_indices]
        sub_weights = self.weights[mask_or_indices]
        if sub_states.shape[0] == 0:
            raise ValueError("subset selects no particles")
        return ParticleSet(sub_states, sub_weights, copy=False)

    def copy(self) -> "ParticleSet":
        return ParticleSet(self.states, self.weights, copy=True)

    @staticmethod
    def concatenate(sets: list["ParticleSet"]) -> "ParticleSet":
        """Stack several particle sets (weights kept as-is, not renormalized)."""
        if not sets:
            raise ValueError("need at least one particle set")
        states = np.concatenate([s.states for s in sets], axis=0)
        weights = np.concatenate([s.weights for s in sets])
        return ParticleSet(states, weights, copy=False)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ParticleSet(n={self.n}, dim={self.dim}, "
            f"total_weight={self.total_weight:.6g}, ess={self.effective_sample_size():.1f})"
        )
