"""KLD-sampling: adapting the particle count (Fox 2003, paper ref. [28]).

Related work the paper cites for reducing PF computation: choose the smallest
number of particles such that the KL divergence between the sample-based
maximum-likelihood estimate and the true posterior is below ``epsilon`` with
probability ``1 - delta``.  With ``k`` occupied histogram bins the bound is

    n = (k - 1) / (2 eps) * [1 - 2/(9(k-1)) + sqrt(2/(9(k-1))) * z_{1-delta}]^3

(Fox 2003, Eq. 12; the Wilson-Hilferty chi-square approximation).

Implemented as a sampler that draws particles one batch at a time from a
weighted source set, tracking bin occupancy on a fixed grid, until the bound
is met — usable as an adaptive alternative to fixed-n resampling in the
centralized filter (exercised by an ablation bench).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import ndtri  # inverse standard normal CDF

from .particles import ParticleSet
from .resampling import get_resampler

__all__ = ["kld_bound", "KLDSampler"]


def kld_bound(k_bins: int, epsilon: float, delta: float) -> int:
    """Minimum particle count for ``k_bins`` occupied bins (Fox 2003, Eq. 12)."""
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    if k_bins < 1:
        raise ValueError(f"k_bins must be >= 1, got {k_bins}")
    if k_bins == 1:
        return 1
    z = float(ndtri(1.0 - delta))
    a = 2.0 / (9.0 * (k_bins - 1))
    n = (k_bins - 1) / (2.0 * epsilon) * (1.0 - a + np.sqrt(a) * z) ** 3
    return max(1, int(np.ceil(n)))


@dataclass(frozen=True)
class KLDSampler:
    """Adaptive-size resampler over a spatial histogram of particle positions.

    Parameters
    ----------
    epsilon, delta:
        KL error bound and its confidence level.
    bin_size:
        Edge length of the (2-D, position-space) histogram bins.
    n_min, n_max:
        Hard bounds on the adapted particle count.
    resampler:
        Base scheme used to draw ancestors from the weighted source set.
    """

    epsilon: float = 0.05
    delta: float = 0.01
    bin_size: float = 2.0
    n_min: int = 20
    n_max: int = 5000
    resampler: str = "systematic"

    def __post_init__(self) -> None:
        if self.bin_size <= 0:
            raise ValueError(f"bin_size must be positive, got {self.bin_size}")
        if not 0 < self.n_min <= self.n_max:
            raise ValueError("need 0 < n_min <= n_max")

    def adapt(self, particles: ParticleSet, rng: np.random.Generator) -> ParticleSet:
        """Resample to an adaptively chosen size.

        Draws ancestors in chunks; after each chunk, recomputes the occupied
        bin count ``k`` of the *drawn* sample and the corresponding bound.
        Stops once the drawn count reaches the bound (or ``n_max``).
        """
        base = get_resampler(self.resampler)
        # Draw n_max ancestors up front (cheap: one pass), then consume
        # them left to right — equivalent to sequential draws but vectorized.
        ancestors = base(particles.weights, self.n_max, rng=rng)
        rng.shuffle(ancestors)  # low-variance schemes return sorted ancestors
        positions = particles.states[ancestors][:, :2]
        bins = np.floor(positions / self.bin_size).astype(np.int64)

        occupied: set[tuple[int, int]] = set()
        n_drawn = 0
        required = self.n_min
        while n_drawn < self.n_max:
            occupied.add((int(bins[n_drawn, 0]), int(bins[n_drawn, 1])))
            n_drawn += 1
            required = max(self.n_min, kld_bound(len(occupied), self.epsilon, self.delta))
            if n_drawn >= required:
                break
        n_final = min(max(n_drawn, self.n_min), self.n_max)
        return particles.select(ancestors[:n_final])
