"""Diagonal-covariance Gaussian mixture models, fit with EM.

Substrate for the compression-based DPF baselines: Sheng et al. [5] compress
a particle population into a small Gaussian mixture whose parameters — not
the particles — travel between sensor cliques.  A K-component diagonal GMM
over d-dimensional states costs ``K * (2d + 1)`` scalars on the wire, versus
``n * d`` for raw particles.

Diagonal covariances keep EM closed-form, numerically robust at the tiny
sample sizes a leader node holds, and cheap to serialize; the reconstruction
error this introduces is part of what the DPF-vs-CDPF benches measure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GaussianMixture", "fit_gmm"]

_MIN_VAR = 1e-6


@dataclass(frozen=True)
class GaussianMixture:
    """A K-component diagonal-covariance mixture over R^d.

    Attributes
    ----------
    weights: ``(k,)`` mixing proportions (sum to 1).
    means: ``(k, d)`` component means.
    variances: ``(k, d)`` per-dimension variances (diagonal covariances).
    """

    weights: np.ndarray
    means: np.ndarray
    variances: np.ndarray

    def __post_init__(self) -> None:
        w = np.asarray(self.weights, dtype=np.float64)
        m = np.atleast_2d(np.asarray(self.means, dtype=np.float64))
        v = np.atleast_2d(np.asarray(self.variances, dtype=np.float64))
        if w.ndim != 1 or m.shape[0] != w.shape[0] or v.shape != m.shape:
            raise ValueError("inconsistent GMM parameter shapes")
        if (w < 0).any() or not np.isclose(w.sum(), 1.0, atol=1e-6):
            raise ValueError("mixture weights must be non-negative and sum to 1")
        if (v <= 0).any():
            raise ValueError("variances must be positive")
        object.__setattr__(self, "weights", w / w.sum())
        object.__setattr__(self, "means", m)
        object.__setattr__(self, "variances", v)

    @property
    def n_components(self) -> int:
        return self.weights.shape[0]

    @property
    def dim(self) -> int:
        return self.means.shape[1]

    @property
    def n_params(self) -> int:
        """Scalar count on the wire: K * (2d + 1)."""
        return self.n_components * (2 * self.dim + 1)

    def mean(self) -> np.ndarray:
        return self.weights @ self.means

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw n samples (component choice + per-dimension Gaussians)."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        comps = rng.choice(self.n_components, size=n, p=self.weights)
        noise = rng.normal(size=(n, self.dim))
        return self.means[comps] + noise * np.sqrt(self.variances[comps])

    def log_pdf(self, x: np.ndarray) -> np.ndarray:
        """log density at each row of ``x`` (stable log-sum-exp over components)."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        diff = x[:, None, :] - self.means[None, :, :]  # (n, k, d)
        quad = np.sum(diff * diff / self.variances[None, :, :], axis=2)
        log_norm = -0.5 * (
            self.dim * np.log(2 * np.pi) + np.sum(np.log(self.variances), axis=1)
        )
        comp_log = np.log(self.weights)[None, :] + log_norm[None, :] - 0.5 * quad
        m = comp_log.max(axis=1, keepdims=True)
        return (m + np.log(np.sum(np.exp(comp_log - m), axis=1, keepdims=True))).ravel()

    # -- wire format ------------------------------------------------------

    def to_params(self) -> np.ndarray:
        """Flatten to the wire vector [w | means | variances]."""
        return np.concatenate(
            [self.weights, self.means.ravel(), self.variances.ravel()]
        )

    @staticmethod
    def from_params(params: np.ndarray, n_components: int, dim: int) -> "GaussianMixture":
        params = np.asarray(params, dtype=np.float64)
        expected = n_components * (2 * dim + 1)
        if params.shape != (expected,):
            raise ValueError(f"expected {expected} params, got {params.shape}")
        k = n_components
        weights = params[:k]
        means = params[k : k + k * dim].reshape(k, dim)
        variances = params[k + k * dim :].reshape(k, dim)
        return GaussianMixture(weights=weights, means=means, variances=variances)


def fit_gmm(
    data: np.ndarray,
    n_components: int,
    *,
    rng: np.random.Generator,
    sample_weights: np.ndarray | None = None,
    n_iter: int = 50,
    tol: float = 1e-6,
) -> GaussianMixture:
    """Weighted EM for a diagonal GMM.

    Initialization: means drawn from the weighted data, uniform weights,
    per-dimension data variance.  Empty components are re-seeded on a random
    data point.  Degenerate inputs (fewer distinct points than components)
    still return a valid mixture — variances are floored at 1e-6.
    """
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    n, d = data.shape
    if n == 0:
        raise ValueError("cannot fit a GMM to zero samples")
    if n_components < 1:
        raise ValueError(f"n_components must be >= 1, got {n_components}")
    if sample_weights is None:
        sw = np.full(n, 1.0 / n)
    else:
        sw = np.asarray(sample_weights, dtype=np.float64)
        if sw.shape != (n,) or (sw < 0).any() or sw.sum() <= 0:
            raise ValueError("sample_weights must be non-negative, matching data length")
        sw = sw / sw.sum()

    k = min(n_components, n)
    init_idx = rng.choice(n, size=k, replace=False, p=sw) if n > 1 else np.zeros(k, dtype=int)
    means = data[init_idx].copy()
    global_var = np.maximum(np.average((data - sw @ data) ** 2, axis=0, weights=sw), _MIN_VAR)
    variances = np.tile(global_var, (k, 1))
    weights = np.full(k, 1.0 / k)

    prev_ll = -np.inf
    for _ in range(n_iter):
        # E step: responsibilities (n, k), weighted by sample weights
        mixture = GaussianMixture(weights=weights, means=means, variances=variances)
        diff = data[:, None, :] - means[None, :, :]
        quad = np.sum(diff * diff / variances[None, :, :], axis=2)
        log_norm = -0.5 * (d * np.log(2 * np.pi) + np.sum(np.log(variances), axis=1))
        comp_log = np.log(weights)[None, :] + log_norm[None, :] - 0.5 * quad
        m = comp_log.max(axis=1, keepdims=True)
        log_total = m + np.log(np.sum(np.exp(comp_log - m), axis=1, keepdims=True))
        resp = np.exp(comp_log - log_total)
        ll = float(sw @ log_total.ravel())

        # M step (weighted)
        r = resp * sw[:, None]
        nk = r.sum(axis=0)
        for j in range(k):
            if nk[j] <= 1e-12:  # re-seed an empty component
                means[j] = data[rng.integers(n)]
                variances[j] = global_var
                nk[j] = 1e-12
            else:
                means[j] = (r[:, j] @ data) / nk[j]
                dv = data - means[j]
                variances[j] = np.maximum((r[:, j] @ (dv * dv)) / nk[j], _MIN_VAR)
        weights = np.maximum(nk, 1e-12)
        weights = weights / weights.sum()

        if abs(ll - prev_ll) < tol:
            break
        prev_ll = ll

    return GaussianMixture(weights=weights, means=means, variances=variances)
