"""Neighborhood estimation: estimated neighbor contributions (paper §V).

Definition 1 (*estimation area*): the disk of sensing radius centered at the
predicted target position.

Definition 2 (*estimated neighbor contributions*): within an estimation area
containing nodes at distances ``d_0 .. d_m`` from the predicted position,

    c_i = 1 / (d_i * D),      D = sum_j 1 / d_j

i.e. contribution inversely proportional to distance, normalized so the set
sums to one (Theorem 1) and identical no matter which node computes it
(Theorem 2 — it depends only on shared, consistent data).  Both theorems are
re-stated here as executable checks used by the property tests.

The *linear probability model* (borrowed from the TDSS paper [21]) decides
which neighbors record propagated particles:  p_i = max(0, 1 - d_i / r).
"""

from __future__ import annotations

import numpy as np

from ..kernels import batch_contributions  # dispatching: honors backend switches

__all__ = [
    "estimated_contributions",
    "contribution_of",
    "linear_probability",
    "is_normalized",
    "pairwise_ratio_consistent",
]

#: Distances below this are clamped before inversion.  A node exactly at the
#: predicted position would otherwise get infinite contribution; the clamp
#: caps its dominance at (sensing_radius / _D_MIN) times the farthest node.
_D_MIN = 1e-3


def estimated_contributions(distances: np.ndarray, *, d_min: float = _D_MIN) -> np.ndarray:
    """Definition 2: normalized inverse-distance contributions.

    Parameters
    ----------
    distances:
        ``(m,)`` distances of every node in the estimation area from the
        predicted target position (any order; the result aligns with it).
    d_min:
        Clamp applied before inversion (see :data:`_D_MIN`).

    Returns
    -------
    ``(m,)`` contributions, non-negative, summing to exactly 1.
    """
    d = np.asarray(distances, dtype=np.float64)
    if d.ndim != 1 or d.size == 0:
        raise ValueError(f"distances must be a non-empty 1-D array, got shape {d.shape}")
    if (d < 0).any() or not np.isfinite(d).all():
        raise ValueError("distances must be finite and non-negative")
    return batch_contributions(d, d_min=d_min)


def contribution_of(
    own_distance: float, all_distances: np.ndarray, *, d_min: float = _D_MIN
) -> float:
    """The c_0 a node computes for itself: 1/(d_0 * D) with D over the whole area.

    ``all_distances`` must include ``own_distance`` (it is what the node
    computes from its neighbor table plus its own position); we validate that
    to catch the classic off-by-one of forgetting oneself in D.
    """
    d = np.asarray(all_distances, dtype=np.float64)
    if not np.isclose(d, own_distance, rtol=1e-9, atol=1e-12).any():
        raise ValueError("all_distances must include own_distance")
    inv = 1.0 / np.maximum(d, d_min)
    return float((1.0 / max(own_distance, d_min)) / inv.sum())


def linear_probability(distances: np.ndarray, radius: float) -> np.ndarray:
    """TDSS linear probability model: p_i = max(0, 1 - d_i / radius).

    Nodes with p > 0 lie inside the predicted area and are candidates for
    recording propagated particles; the division rule weights recorders
    proportionally to p.
    """
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    d = np.asarray(distances, dtype=np.float64)
    if (d < 0).any() or not np.isfinite(d).all():
        raise ValueError("distances must be finite and non-negative")
    return np.maximum(0.0, 1.0 - d / radius)


# ---------------------------------------------------------------------------
# Executable statements of Theorems 1 and 2 (used by tests)
# ---------------------------------------------------------------------------


def is_normalized(contributions: np.ndarray, atol: float = 1e-9) -> bool:
    """Theorem 1: the estimated contributions sum to one and are non-negative."""
    c = np.asarray(contributions, dtype=np.float64)
    return bool((c >= 0).all() and np.isclose(c.sum(), 1.0, rtol=0, atol=atol))


def pairwise_ratio_consistent(
    contributions: np.ndarray, distances: np.ndarray, rtol: float = 1e-7
) -> bool:
    """Eq. 4: c_i * d_i is the same constant for every node in the area.

    (With the d_min clamp the invariant holds for all distances >= d_min,
    which tests respect.)
    """
    c = np.asarray(contributions, dtype=np.float64)
    d = np.asarray(distances, dtype=np.float64)
    products = c * d
    return bool(np.allclose(products, products[0], rtol=rtol))
