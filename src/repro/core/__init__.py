"""The paper's contribution: CDPF and CDPF-NE."""

from .cdpf import CDPFStats, CDPFTracker, bearing_log_kernel, quantization_sigma
from .multitarget import MultiTargetCDPF, Track
from .contributions import (
    contribution_of,
    estimated_contributions,
    is_normalized,
    linear_probability,
    pairwise_ratio_consistent,
)
from .propagation import (
    HeldParticle,
    PropagationConfig,
    combine_shares,
    division_shares,
    implied_velocity,
    select_recorders,
)

__all__ = [
    "CDPFStats", "CDPFTracker", "bearing_log_kernel", "quantization_sigma",
    "MultiTargetCDPF", "Track",
    "contribution_of", "estimated_contributions", "is_normalized",
    "linear_probability", "pairwise_ratio_consistent",
    "HeldParticle", "PropagationConfig", "combine_shares", "division_shares",
    "implied_velocity", "select_recorders",
]
