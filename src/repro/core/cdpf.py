"""CDPF and CDPF-NE: the completely distributed particle filter (paper §IV-§V).

One :class:`CDPFTracker` iteration executes Algorithm 1 with the reordered
steps of Fig. 2(b):

1.  **Prediction / propagation** — every holder broadcasts its particle
    (state + weight) one hop; nodes in the sender's predicted area decide
    *locally* whether to record it (linear probability model), split the
    weight (division rules), and merge shares from several senders
    (combination).
2.  **Correction** — every node that overheard the propagation knows the
    total weight as a side product, so it normalizes its recorded share,
    applies the drop rule (the paper's resampling for node-hosted
    particles), and computes the estimate *for the previous iteration*.
3.  **Likelihood** — holders that detected the target broadcast their
    measurements one hop; every holder evaluates the joint likelihood of its
    own (node-position) state.       [CDPF only]
4.  **Assign weight** — ``w_{k+1} = share * likelihood`` — or, for CDPF-NE,
    ``w_{k+1} = share * c_0`` with the estimated neighbor contribution of
    §V replacing the likelihood, which removes step 3's traffic entirely.

The estimate returned by :meth:`step` at iteration ``k`` therefore refers to
iteration ``k - 1``: the one-iteration correction latency is inherent to the
reordering and the runner accounts for it explicitly.

Implementation discipline: every per-node decision uses only that node's
local knowledge (its position, its neighbor table, its inbox).  The harness
computes *which* nodes to iterate over globally — a pure scheduling shortcut
that does not leak information into any node's decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..kernels import batch_likelihood  # dispatching: honors backend switches
from ..kernels.geometry import norm2d_many
from ..kernels.propagation import batch_implied_velocities, batch_propagate
from ..models.measurement import wrap_angle
from ..network.messages import MeasurementMessage, ParticleMessage
from ..runtime import IterationState, Phase, PhasePipeline, TrackerStats
from ..scenario import Scenario, StepContext
from .contributions import estimated_contributions
from .propagation import HeldParticle, PropagationConfig, combine_shares

__all__ = ["CDPFTracker", "CDPFStats", "bearing_log_kernel"]

#: Measurements taken closer than this to a particle's position are skipped:
#: a bearing constrains direction only, and at the sensor itself the
#: direction to the target is undefined (atan2(0, 0)).
_SENSOR_EPS = 1e-6


def quantization_sigma(
    local_density_per_m2: float, sensor_distance: float
) -> float:
    """Bearing-sigma inflation for node-hosted (position-quantized) particles.

    A node stands in for its Voronoi cell (~ half-spacing ``h = 0.5 / sqrt(lambda)``
    across); evaluating a bearing likelihood *at the node* instead of anywhere
    in the cell is an angular error up to ``atan(h / d)`` as seen from a
    sensor at distance ``d``.  Without this term the raw kernel selects the
    single node nearest the measured ray and the holder population collapses
    to one — fatal at low densities.  Locally computable: a node estimates
    ``lambda`` from its own one-hop degree.
    """
    if local_density_per_m2 <= 0:
        raise ValueError("local density must be positive")
    h = 0.5 / np.sqrt(local_density_per_m2)
    return float(np.arctan(h / max(sensor_distance, h)))


def bearing_log_kernel(
    particle_position: np.ndarray,
    z: float,
    sensor_position: np.ndarray,
    noise_std: float,
) -> float:
    """log of the *normalized* bearing likelihood kernel exp(-r^2 / 2 sigma^2).

    The 1/(sigma sqrt(2 pi)) constant cancels under weight normalization, and
    keeping the kernel <= 1 prevents overflow when many measurements are
    fused on one node.
    """
    d = np.asarray(particle_position, dtype=np.float64) - np.asarray(
        sensor_position, dtype=np.float64
    )
    if float(d @ d) < _SENSOR_EPS**2:
        return 0.0  # own-position measurement carries no positional information
    predicted = np.arctan2(d[1], d[0])
    residual = float(wrap_angle(z - predicted))
    return -0.5 * (residual / noise_std) ** 2


@dataclass
class CDPFStats(TrackerStats):
    """Per-run bookkeeping the experiments read out.

    Extends the shared :class:`~repro.runtime.stats.TrackerStats` (holder /
    creator / track-lost / degraded counters, per-phase timings) with the
    CDPF-specific series.  ``degraded_iterations`` counts iterations where
    channel loss forced graceful degradation: a recorder renormalized against
    an incomplete overheard total, or the whole correction round lost quorum
    and fell back to prior-weight propagation.  Always 0 on a reliable
    medium.
    """

    dropped_per_iteration: list[int] = field(default_factory=list)
    estimate_disagreement: list[float] = field(default_factory=list)
    partial_overhearing: list[int] = field(default_factory=list)
    area_widenings: int = 0


class CDPFTracker:
    """The completely distributed particle filter (set ``neighborhood_estimation``
    for CDPF-NE).

    Parameters
    ----------
    scenario:
        Static world configuration (deployment, radio, models, byte sizes).
    rng:
        Randomness source (only the sensing layer consumes randomness inside
        the tracker-facing pipeline; propagation itself is deterministic).
    config:
        Propagation mechanism knobs; defaults to the paper's geometry
        (predicted-area radius = sensing radius).
    neighborhood_estimation:
        When True, run CDPF-NE: skip measurement sharing and weight by the
        estimated neighbor contribution c_0 instead of the likelihood.
    check_consistency:
        When True, compute the correction-step estimate independently at
        every recorder and record the maximum disagreement (slow; used by
        integration tests to validate Theorem 2's operational consequence).
    """

    def __init__(
        self,
        scenario: Scenario,
        *,
        rng: np.random.Generator,
        config: PropagationConfig | None = None,
        neighborhood_estimation: bool = False,
        initial_weight: float = 1.0,
        medium=None,
        check_consistency: bool = False,
        report_to_sink: bool = False,
    ) -> None:
        self.scenario = scenario
        self.rng = rng
        if config is None:
            if neighborhood_estimation:
                # NE has no likelihood channel: detection-driven particle
                # creation is its only grounding, so it anchors more eagerly
                # (tighter slack, higher creation rate); and with no
                # likelihood to concentrate weights, the holder population is
                # bounded geometrically instead (tighter recording radius) so
                # that NE stays the minimum-cost option at every density.
                config = PropagationConfig(
                    predicted_area_radius=scenario.sensing_radius,
                    record_threshold=0.65,
                    creation_slack=1.2,
                    creation_limit=6.0,
                )
            else:
                config = PropagationConfig(predicted_area_radius=scenario.sensing_radius)
        self.config = config
        self.neighborhood_estimation = neighborhood_estimation
        self.name = "CDPF-NE" if neighborhood_estimation else "CDPF"
        if initial_weight <= 0:
            raise ValueError(f"initial_weight must be positive, got {initial_weight}")
        self.initial_weight = float(initial_weight)
        self.medium = medium if medium is not None else scenario.make_medium()
        self.neighbors = scenario.make_neighbor_tables()
        self.check_consistency = check_consistency
        #: §IV-A step 2: "possibly report it to sink nodes".  Off by default
        #: (Table I's CDPF cost excludes reporting); when on, the highest-
        #: share holder unicasts each correction-step estimate to the sink,
        #: charged under the "report" category.
        self.report_to_sink = report_to_sink
        self._sink = scenario.sink_node() if report_to_sink else None

        #: node id -> the single (combined) particle it maintains
        self.holders: dict[int, HeldParticle] = {}
        self.stats = CDPFStats()
        #: anticipated availability hook: callable(ids) -> bool mask, or None
        self.anticipate_available = None

        self._estimate: np.ndarray | None = None
        self._estimate_iter: int | None = None
        self._velocity_estimate: np.ndarray | None = None
        self._last_sender_positions: np.ndarray | None = None
        self._last_predictions: np.ndarray | None = None

        # Fig. 2(b)'s reordered iteration as declared phases: CDPF-NE has no
        # likelihood channel, so its phase list simply omits that phase (the
        # traffic difference between the variants is one missing phase row).
        phases = [
            Phase("propagation", self._phase_propagation),
            Phase("correction", self._phase_correction),
            Phase("creation", self._phase_creation),
        ]
        if not neighborhood_estimation:
            phases.append(Phase("likelihood", self._phase_likelihood))
        phases.append(Phase("assign_weight", self._phase_assign_weight))
        self.phases = tuple(phases)
        self.pipeline = PhasePipeline(self, medium=self.medium, stats=self.stats)

    # ------------------------------------------------------------------
    # public interface
    # ------------------------------------------------------------------

    def step(self, ctx: StepContext) -> np.ndarray | None:
        """One CDPF iteration; returns the estimate for the *previous* iteration."""
        return self.pipeline.run(ctx)

    def estimate_iteration(self) -> int | None:
        return self._estimate_iter

    @property
    def accounting(self):
        return self.medium.accounting

    # ------------------------------------------------------------------
    # checkpoint protocol
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Mutable tracker state only.  The medium is owned by the run layer
        (and shared across trackers under :class:`~repro.core.multitarget.
        MultiTargetCDPF`), so it snapshots separately; static configuration
        (scenario, config, phase list) is rebuilt from the spec on restore."""
        from ..runtime.checkpoint import snapshot_rng

        return {
            "holders": [
                [int(nid), p.velocity.copy(), float(p.weight)]
                for nid, p in sorted(self.holders.items())
            ],
            "estimate": None if self._estimate is None else self._estimate.copy(),
            "estimate_iter": self._estimate_iter,
            "velocity_estimate": (
                None
                if self._velocity_estimate is None
                else np.asarray(self._velocity_estimate, dtype=np.float64).copy()
            ),
            "last_sender_positions": (
                None
                if self._last_sender_positions is None
                else self._last_sender_positions.copy()
            ),
            "last_predictions": (
                None if self._last_predictions is None else self._last_predictions.copy()
            ),
            "rng": snapshot_rng(self.rng),
            "stats": self.stats.snapshot(),
        }

    def restore(self, state: dict) -> None:
        from ..runtime.checkpoint import restore_rng

        self.holders = {
            int(nid): HeldParticle(
                velocity=np.asarray(velocity, dtype=np.float64), weight=float(weight)
            )
            for nid, velocity, weight in state["holders"]
        }
        est = state["estimate"]
        self._estimate = None if est is None else np.asarray(est, dtype=np.float64).copy()
        self._estimate_iter = (
            None if state["estimate_iter"] is None else int(state["estimate_iter"])
        )
        vel = state["velocity_estimate"]
        self._velocity_estimate = (
            None if vel is None else np.asarray(vel, dtype=np.float64).copy()
        )
        sp = state["last_sender_positions"]
        self._last_sender_positions = (
            None if sp is None else np.asarray(sp, dtype=np.float64).copy()
        )
        lp = state["last_predictions"]
        self._last_predictions = (
            None if lp is None else np.asarray(lp, dtype=np.float64).copy()
        )
        restore_rng(self.rng, state["rng"])
        self.stats.restore(state["stats"])

    # ------------------------------------------------------------------
    # initialization (paper §III-B: first detectors get unit-weight particles)
    # ------------------------------------------------------------------

    def _initialize(self, ctx: StepContext, detectors: set[int]) -> None:
        if not detectors:
            return
        v0 = np.asarray(self.scenario.prior_velocity, dtype=np.float64)
        for nid in sorted(detectors):
            self.holders[nid] = HeldParticle(velocity=v0.copy(), weight=self.initial_weight)
        self.stats.holders_per_iteration.append(len(self.holders))
        self.stats.creators_per_iteration.append(len(detectors))

    # ------------------------------------------------------------------
    # steps 1 + 2: propagation, overheard total, correction
    # ------------------------------------------------------------------

    def _available_mask(self, ids: np.ndarray) -> np.ndarray:
        """Locally *anticipated* availability of candidate recorders (§V-D)."""
        if self.anticipate_available is None:
            return np.ones(ids.shape[0], dtype=bool)
        return np.asarray(self.anticipate_available(ids), dtype=bool)

    def _phase_propagation(self, state: IterationState) -> None:
        """Step 1 (first half): every available holder broadcasts its particle.

        Also hosts the birth iteration (§III-B initialization): with no
        holders yet there is nothing to propagate, the detectors seed the
        first particles, and the iteration ends early.
        """
        ctx = state.ctx
        state.detectors = set(int(d) for d in np.asarray(ctx.detectors).ravel())
        if not self.holders:
            self._initialize(ctx, state.detectors)
            state.finish(None)
            return
        k = state.iteration
        positions = self.scenario.deployment.positions

        # A holder that slept or failed before its broadcast loses its
        # particle — the weight leaks, exactly the §V-D uncertain-factor case.
        # Under an unreliable channel each broadcast's per-recipient drop
        # record is kept: a node that lost a copy can neither record a share
        # from it nor count its weight in the overheard total.
        broadcast: list[ParticleMessage] = []
        batch = self.medium.transmission_batch(k)
        for nid in sorted(self.holders):
            if not self.medium.is_available(nid):
                continue
            particle = self.holders[nid]
            msg = ParticleMessage(
                sender=nid,
                iteration=k,
                states=particle.state(positions[nid])[None, :],
                weights=np.array([particle.weight]),
            )
            batch.broadcast(nid, msg)
            broadcast.append(msg)
        state.broadcast = broadcast
        # per-broadcast recipients that lost the copy, aligned with broadcast
        state.lost_sets = [
            set(delivery.dropped.tolist()) | set(delivery.delayed.tolist())
            for delivery in batch.flush()
        ]
        if not broadcast:
            # the whole population became unavailable: the track is lost and
            # detection-driven creation must rebuild it
            self.holders = {}

    def _phase_correction(self, state: IterationState) -> None:
        """Steps 1b + 2: overheard total, record/divide/combine, normalize, drop."""
        broadcast: list[ParticleMessage] = state.broadcast
        if not broadcast:
            return  # nothing was propagated; the estimate stays unavailable
        lost_sets: list[set[int]] = state.lost_sets
        k = state.iteration
        positions = self.scenario.deployment.positions
        index = self.scenario.deployment.index
        dt = self.scenario.dynamics.dt
        cfg = self.config

        # --- overheard aggregate (identical at every in-area node) --------
        states = np.vstack([m.states for m in broadcast])
        weights = np.concatenate([m.weights for m in broadcast])
        total = float(weights.sum())
        w_eff = weights if total > 0 else np.full(weights.shape[0], 1.0 / weights.shape[0])
        total_eff = float(w_eff.sum())
        estimate = (w_eff @ states[:, :2]) / total_eff
        # Track velocity: blend the carried-velocity mean with the
        # displacement of consecutive consensus estimates.  The displacement
        # is the only signal that follows the target's turns, but it carries
        # ~2x the estimate noise amplified by 1/dt, so it is smoothed into
        # the carried mean rather than used raw.
        carried = (w_eff @ states[:, 2:]) / total_eff
        if self._estimate is not None and self._estimate_iter == k - 2:
            displacement = (estimate - self._estimate) / dt
            beta = self.config.velocity_alpha
            self._velocity_estimate = (1.0 - beta) * carried + beta * displacement
        else:
            self._velocity_estimate = carried
        self._estimate = estimate
        self._estimate_iter = k - 1

        # --- steps 1b + 2: record, divide, combine; normalize; drop -------
        #
        # The recording decision and the division shares are functions of
        # *shared* data only (sender state in the broadcast message, static
        # node positions, anticipated availability), so — exactly as Theorem 2
        # argues for contributions — every candidate computes the identical
        # result.  The simulator exploits that consistency and evaluates each
        # broadcast's recorder set once instead of once per receiver; the
        # per-receiver equivalence is asserted by a dedicated test.
        comm_radius = self.scenario.radio.comm_radius
        self._last_sender_positions = states[:, :2]
        self._last_predictions = states[:, :2] + states[:, 2:] * dt
        shares_at: dict[int, list[tuple[float, np.ndarray]]] = {}
        all_recorder_ids: set[int] = set()
        # In track mode every holder carries the same consensus velocity, and
        # the natural propagation target is the *consensus* predicted
        # position (Definition 1's estimation area is the disk around "the
        # target's predicted position", singular) — all predicted areas
        # coincide, which is what bounds the recorder union.
        consensus_pred = (
            estimate + self._velocity_estimate * dt
            if cfg.velocity_mode == "track"
            else None
        )
        if consensus_pred is not None:
            self._last_predictions = consensus_pred[None, :]

        # degeneracy-aware area adaptation (future-work item 2): all
        # participants see the same overheard weights, hence the same ESS
        # and the same widened geometry
        if cfg.adaptive_area and weights.shape[0] > 1:
            w_norm = w_eff / total_eff
            ess_ratio = float(1.0 / np.sum(w_norm * w_norm)) / weights.shape[0]
            if ess_ratio < cfg.ess_target:
                from dataclasses import replace as _replace

                cfg = _replace(
                    cfg,
                    predicted_area_radius=cfg.predicted_area_radius * cfg.area_scale_max,
                )
                self.stats.area_widenings += 1
        # One spatial query + one batched recorder selection for the whole
        # round instead of per-broadcast scalar calls.  In track mode every
        # broadcast shares the consensus predicted area, so the candidate set
        # is queried once; otherwise the per-sender areas are unioned and each
        # broadcast keeps only its own in-area candidates (``query_disk``'s
        # ``d2 <= r*r`` test replicated bitwise — the sqrt'd probability cut
        # alone is NOT equivalent at the disk boundary).  The availability
        # hook is evaluated once over the shared candidate set; hooks are
        # pure functions of the ids (all in-repo hooks are).
        sender_pos_all = states[:, :2]
        sender_vel_all = states[:, 2:]
        if consensus_pred is not None:
            preds = np.broadcast_to(consensus_pred, (len(broadcast), 2))
            cand = index.query_disk(consensus_pred, cfg.predicted_area_radius)
            in_area_masks = None
        else:
            preds = sender_pos_all + sender_vel_all * dt
            cand = index.query_disk_many(preds, cfg.predicted_area_radius)
        if cand.size:
            cand_pos = positions[cand]
            if consensus_pred is None:
                pdx = cand_pos[None, :, 0] - preds[:, 0:1]
                pdy = cand_pos[None, :, 1] - preds[:, 1:2]
                in_area_masks = pdx * pdx + pdy * pdy <= (
                    cfg.predicted_area_radius * cfg.predicted_area_radius
                )
            sdx = cand_pos[None, :, 0] - sender_pos_all[:, 0:1]
            sdy = cand_pos[None, :, 1] - sender_pos_all[:, 1:2]
            keep_masks = np.sqrt(sdx * sdx + sdy * sdy) <= comm_radius
            if in_area_masks is not None:
                keep_masks &= in_area_masks
            keep_masks &= self._available_mask(cand)[None, :]
            for bi, lost in enumerate(lost_sets):
                if lost:
                    # a candidate that lost this copy never heard the
                    # particle: it cannot record a share of it
                    keep_masks[bi] &= np.fromiter(
                        (int(c) not in lost for c in cand), dtype=bool, count=cand.size
                    )
            selected = batch_propagate(
                preds,
                w_eff,
                cand,
                cand_pos,
                area_radius=cfg.predicted_area_radius,
                record_threshold=cfg.record_threshold,
                max_recorders=cfg.max_recorders,
                keep_masks=keep_masks,
            )
        else:
            selected = [(np.zeros(0, dtype=np.intp),) * 3] * len(broadcast)
        for bi in range(len(broadcast)):
            sel, _, rec_shares = selected[bi]
            if sel.size == 0:
                continue
            rec_ids = cand[sel]
            all_recorder_ids.update(rec_ids.tolist())
            vels = batch_implied_velocities(
                sender_pos_all[bi],
                positions[rec_ids],
                sender_vel_all[bi],
                dt,
                cfg.velocity_mode,
                cfg.velocity_alpha,
                track_velocity=self._velocity_estimate,
            )
            for i, (rid, share) in enumerate(zip(rec_ids.tolist(), rec_shares.tolist())):
                # anticipated recorders that are actually unavailable lose
                # their share (weight leak — the §V-D uncertain-factor case)
                if not self.medium.is_available(rid):
                    continue
                shares_at.setdefault(rid, []).append((share, vels[i]))

        # Drop rule (the correction step's "resampling"): discard recorded
        # particles whose share is below drop_threshold times the largest
        # recorded share.  Every recorder can evaluate this locally: shares
        # are deterministic functions of the overheard broadcasts and static
        # positions (the same shared data Theorem 2 relies on), so each node
        # can reconstruct every other recorder's share without communication.
        # Relative-to-max pruning is scale-free in the weights, so it cannot
        # go extinct and the surviving holder count is set by geometry —
        # growing with deployment density exactly as §III-A describes.
        combined = {rid: combine_shares(shares_at[rid]) for rid in sorted(shares_at)}
        any_lost = any(lost_sets)
        if not combined and any_lost:
            # Graceful degradation: the correction round lost quorum — every
            # share was lost to the channel.  Fall back to prior-weight
            # propagation: surviving holders keep their particles and weights
            # for one iteration instead of declaring the track lost, so a
            # single deep fade does not erase the whole posterior.
            self.stats.degraded_iterations += 1
            self.stats.dropped_per_iteration.append(0)
            self.holders = {
                nid: p for nid, p in self.holders.items() if self.medium.is_available(nid)
            }
            if self.check_consistency:
                self._record_consistency()
            self.medium.clear_inboxes()
            state.estimate = estimate
            return

        # Per-recorder overheard totals: a recorder that lost copies saw a
        # *smaller* total weight than the full round carried.  It renormalizes
        # by what it actually overheard (the locally correct denominator) —
        # on a reliable medium this is exactly the shared total.
        lost_weight_at: dict[int, float] = {}
        if any_lost:
            for bi, lost in enumerate(lost_sets):
                w_bi = float(w_eff[bi])
                for r in lost:
                    lost_weight_at[r] = lost_weight_at.get(r, 0.0) + w_bi

        max_share = max((p.weight for p in combined.values()), default=0.0)
        threshold = cfg.drop_threshold * max_share
        new_holders: dict[int, HeldParticle] = {}
        dropped = 0
        degraded = False
        for rid, particle in combined.items():
            if particle.weight < threshold:
                dropped += 1
                continue
            lost_w = lost_weight_at.get(rid, 0.0)
            if lost_w > 0.0:
                degraded = True
                denom = total_eff - lost_w
                if denom <= 0.0:
                    denom = total_eff
            else:
                denom = total_eff
            particle.weight = particle.weight / denom
            new_holders[rid] = particle
        if degraded:
            self.stats.degraded_iterations += 1

        if self.check_consistency:
            self._record_consistency()

        self.holders = new_holders
        self.stats.dropped_per_iteration.append(dropped)
        if self.report_to_sink and new_holders:
            self._send_estimate_report(estimate, k)
        self.medium.clear_inboxes()
        state.estimate = estimate

    def _send_estimate_report(self, estimate: np.ndarray, k: int) -> None:
        """Route the correction-step estimate from the top holder to the sink."""
        from ..network.messages import EstimateReportMessage
        from ..network.routing import RoutingError, greedy_path

        reporter = max(self.holders, key=lambda nid: self.holders[nid].weight)
        msg = EstimateReportMessage(sender=reporter, iteration=k, estimate=estimate)
        if reporter == self._sink:
            return
        try:
            path = greedy_path(
                self.scenario.deployment.index, reporter, self._sink, self.scenario.radio
            )
            self.medium.unicast_path(path, msg, k)
        except (RoutingError, RuntimeError):
            pass  # the report is best-effort; tracking is unaffected

    def _record_consistency(self) -> None:
        """Per-receiver estimates from actual inboxes (Theorem 2's operational check).

        The paper's consistency claim holds for nodes with *complete*
        overhearing ("as long as the propagation does not reach too far",
        §IV-A): those must agree to numerical precision.  Nodes that heard a
        strict subset are recorded separately as a coverage statistic.
        """
        n_broadcast = len(self.holders)
        per_node_estimates: list[np.ndarray] = []
        n_partial = 0
        for r in self.medium.pending_nodes():
            inbox = [m for m in self.medium.peek(r) if isinstance(m, ParticleMessage)]
            if not inbox:
                continue
            if len(inbox) < n_broadcast:
                n_partial += 1
                continue
            st = np.vstack([m.states for m in inbox])
            wt = np.concatenate([m.weights for m in inbox])
            tw = wt.sum()
            if tw > 0:
                per_node_estimates.append((wt @ st[:, :2]) / tw)
        if len(per_node_estimates) > 1:
            ests = np.vstack(per_node_estimates)
            spread = float(np.max(np.linalg.norm(ests - ests.mean(axis=0), axis=1)))
            self.stats.estimate_disagreement.append(spread)
        self.stats.partial_overhearing.append(n_partial)

    # ------------------------------------------------------------------
    # new-particle creation (§III-B: detectors that heard no propagation)
    # ------------------------------------------------------------------

    def _create_new_particles(self, ctx: StepContext, detectors: set[int]) -> set[int]:
        """§III-B: a detector outside every overheard predicted area (or out of
        earshot entirely) creates a particle "as in the initialization step".

        Created particles keep the initialization weight this iteration (no
        likelihood/NE multiplier — initialization assigns a constant weight),
        which is the channel that re-anchors a drifting track to physical
        detections.  Returns the created node ids.
        """
        positions = self.scenario.deployment.positions
        if self.holders:
            base_weight = float(np.mean([p.weight for p in self.holders.values()]))
        else:
            base_weight = self.initial_weight
        sender_pos = self._last_sender_positions
        predictions = self._last_predictions
        comm_r2 = self.scenario.radio.comm_radius**2
        slack_r = self.config.creation_slack * self.config.predicted_area_radius
        area_ratio = (self.scenario.sensing_radius / self.scenario.radio.comm_radius) ** 2
        track_alive = bool(self.holders)
        v0 = np.asarray(self.scenario.prior_velocity, dtype=np.float64)
        created: set[int] = set()
        for nid in sorted(detectors):
            if nid in self.holders or not self.medium.is_available(nid):
                continue
            heard_any = False
            if sender_pos is not None and sender_pos.size:
                heard = np.sum((sender_pos - positions[nid]) ** 2, axis=1) <= comm_r2
                heard_any = bool(heard.any())
                if heard_any:
                    # it overheard propagation: create only if it sits outside
                    # every predicted area (with slack).  Under consensus
                    # prediction there is a single area; otherwise one per
                    # overheard sender.
                    if predictions.shape[0] == sender_pos.shape[0]:
                        preds_heard = predictions[heard]
                    else:
                        preds_heard = predictions
                    d_pred = np.sqrt(
                        np.sum((preds_heard - positions[nid]) ** 2, axis=1)
                    )
                    if (d_pred <= slack_r).any():
                        continue
            if track_alive and heard_any:
                # local creation rate limit for the outside-area case: keep
                # the expected creator count at ~creation_limit network-wide.
                # Detectors out of earshot entirely skip the limit — they are
                # the re-anchoring channel and behave like initialization.
                n_codetectors = max(1.0, (self.neighbors.degree(nid) + 1) * area_ratio)
                if self.rng.uniform() >= min(1.0, self.config.creation_limit / n_codetectors):
                    continue
            if self._estimate is not None:
                # The creator detects the target *now*, so the displacement
                # from the last consensus estimate to its own position is a
                # direct (locally computable) velocity observation — the
                # channel through which the track velocity re-learns turns.
                velocity = (positions[nid] - self._estimate) / self.scenario.dynamics.dt
            else:
                velocity = v0.copy()
            self.holders[nid] = HeldParticle(velocity=velocity, weight=base_weight)
            created.add(nid)
        return created

    # ------------------------------------------------------------------
    # new-particle creation phase
    # ------------------------------------------------------------------

    def _phase_creation(self, state: IterationState) -> None:
        state.created = self._create_new_particles(state.ctx, state.detectors)

    # ------------------------------------------------------------------
    # step 3, CDPF flavor: measurement sharing + likelihood evaluation
    # ------------------------------------------------------------------

    def _phase_likelihood(self, state: IterationState) -> None:
        """Share measurements one hop and evaluate each holder's joint kernel.

        Only computes the per-holder log-likelihood (into ``state.log_liks``);
        the weight multiplication is the assign_weight phase.  The kernels
        read only prior-weight-independent data (states, measurements), so
        deferring the multiply is bit-identical to the fused loop.
        """
        ctx = state.ctx
        detectors: set[int] = state.detectors
        positions = self.scenario.deployment.positions
        measurement = self.scenario.measurement
        k = state.iteration
        sharers = sorted(
            nid
            for nid in self.holders
            if nid in detectors and self.medium.is_available(nid)
        )
        batch = self.medium.transmission_batch(k)
        for s in sharers:
            msg = MeasurementMessage(sender=s, iteration=k, value=float(ctx.measurements[s]))
            batch.broadcast(s, msg)
        batch.flush()
        # Gather every holder's (sender, measurement) pairs, then evaluate the
        # whole round as one (holders, measurements) log-kernel matrix.  The
        # matrix columns are the distinct pairs actually sitting in inboxes —
        # a delayed channel can deliver stale copies whose value differs from
        # this iteration's reading, so columns key on the pair, not the sender.
        rows: list[int] = []
        pair_lists: list[list[tuple[int, float]]] = []
        for r in sorted(self.holders):
            if r in state.created:
                self.medium.collect(r)  # drain; initialization weight stands
                continue
            inbox = [m for m in self.medium.collect(r) if isinstance(m, MeasurementMessage)]
            # a node's own measurement needs no radio message
            own = [(r, ctx.measurements[r])] if r in detectors else []
            pairs = [(m.sender, m.value) for m in inbox] + own
            if not pairs:
                continue  # no information this iteration; weight unchanged
            rows.append(r)
            pair_lists.append(pairs)
        log_liks: dict[int, float] = {}
        if rows:
            col_of: dict[tuple[int, float], int] = {}
            for pairs in pair_lists:
                for pair in pairs:
                    if pair not in col_of:
                        col_of[pair] = len(col_of)
            refs = np.vstack(
                [measurement.reference_point(positions[s]) for s, _ in col_of]
            )
            zs = np.array([z for _, z in col_of], dtype=np.float64)
            # discretization-aware sigma: local density from each node's degree
            lam_denom = np.pi * self.scenario.radio.comm_radius**2
            lam = np.array(
                [(self.neighbors.degree(r) + 1) / lam_denom for r in rows]
            )
            matrix = batch_likelihood(
                positions[rows], lam, refs, zs, measurement.noise_std
            )
            # tempered fusion (mean log-kernel): the per-sensor bearings share
            # a common-mode error, so treating them as fully independent would
            # sharpen the joint likelihood far below the node-position
            # quantization scale and randomly annihilate every holder
            for i, (r, pairs) in enumerate(zip(rows, pair_lists)):
                cols = [col_of[pair] for pair in pairs]
                log_liks[r] = float(matrix[i, cols].mean())
        state.log_liks = log_liks
        self.medium.clear_inboxes()

    # ------------------------------------------------------------------
    # step 4: assign weight (likelihood multiply, or NE contribution)
    # ------------------------------------------------------------------

    def _phase_assign_weight(self, state: IterationState) -> None:
        if self.neighborhood_estimation:
            self._assign_weights_ne(state.iteration, skip=state.created)
        else:
            for r, log_lik in state.log_liks.items():
                particle = self.holders[r]
                particle.weight = particle.weight * float(np.exp(log_lik))
        self.stats.record_population(len(self.holders), len(state.created))

    # ------------------------------------------------------------------
    # steps 3 + 4, CDPF-NE flavor: estimated neighbor contributions
    # ------------------------------------------------------------------

    def _assign_weights_ne(self, k: int, skip: set[int] = frozenset()) -> None:
        if self._estimate is None or self._velocity_estimate is None:
            return  # no consensus prediction yet; weights stay as recorded
        positions = self.scenario.deployment.positions
        dt = self.scenario.dynamics.dt
        r_s = self.scenario.sensing_radius
        predicted_now = self._estimate + self._velocity_estimate * dt
        holders = [r for r in sorted(self.holders) if r not in skip]
        if not holders:
            return
        # Own distances batched in the scalar path's np.linalg.norm (FMA) form;
        # neighborhood distances batched below in its plain sqrt-of-squares
        # form — the two differ in the last bit and both are replicated.
        own_diff = positions[holders] - predicted_now
        d_own = norm2d_many(own_diff[:, 0], own_diff[:, 1])
        groups: list[tuple[int, np.ndarray]] = []
        for i, r in enumerate(holders):
            particle = self.holders[r]
            if d_own[i] > r_s:
                # outside the estimation area: zero contribution -> drop later
                particle.weight = 0.0
                continue
            neigh = self.neighbors.neighbors(r)
            avail = self._available_mask(neigh)
            groups.append((r, np.append(neigh[avail], r)))  # self is always available
        if not groups:
            return
        flat_ids = np.concatenate([ids for _, ids in groups])
        diff = positions[flat_ids] - predicted_now
        d_flat = np.sqrt(diff[:, 0] * diff[:, 0] + diff[:, 1] * diff[:, 1])
        offset = 0
        for r, ids in groups:
            d_all = d_flat[offset : offset + ids.size]
            offset += ids.size
            in_area = d_all <= r_s
            area_ids = ids[in_area]
            d_area = d_all[in_area]
            contributions = estimated_contributions(d_area)
            own_idx = int(np.nonzero(area_ids == r)[0][0])
            particle = self.holders[r]
            particle.weight = particle.weight * float(contributions[own_idx])
