"""Multi-target CDPF: several completely distributed tracks in one network.

The paper tracks one target; its closest related work (Sheng et al. [5])
handles multiple targets with per-target sensor cliques.  This extension
composes the same idea from CDPF building blocks:

* each confirmed target is tracked by an independent CDPF instance ("track")
  whose holders form that target's moving clique;
* **data association is spatial gating**: a detector's measurement belongs to
  the nearest track whose last predicted position lies within
  ``gate_radius`` — a decision the detector makes from overheard predicted
  positions, i.e. locally;
* detectors outside every gate accumulate as *unassociated evidence*; when
  enough of them cluster (``spawn_threshold`` detectors within a sensing
  radius), a new track is born on them — the multi-target generalization of
  §III-B's particle creation;
* tracks that receive no associated detections for ``prune_after``
  consecutive iterations are retired (a CDPF cloud coasts forever without
  detections, so track life is bounded by its evidence supply).

All tracks share one medium, so the communication ledger reflects the true
combined traffic.  This module is an *extension* (clearly beyond the paper);
it exists to show the CDPF mechanism composes, and is exercised by its own
tests and example.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..runtime import IterationState, Phase, PhasePipeline, TrackerStats
from ..scenario import Scenario, StepContext
from .cdpf import CDPFTracker
from .propagation import PropagationConfig

__all__ = ["Track", "MultiTargetCDPF"]


@dataclass
class Track:
    """One target's CDPF instance plus its lifecycle state."""

    track_id: int
    tracker: CDPFTracker
    born_at: int
    empty_iterations: int = 0
    retired: bool = False

    @property
    def estimate(self) -> np.ndarray | None:
        return self.tracker._estimate

    def predicted_position(self, dt: float, at_iteration: int | None = None) -> np.ndarray | None:
        """Dead-reckoned position for ``at_iteration`` (default: one step ahead).

        CDPF's estimate refers to an earlier iteration (correction latency),
        so the extrapolation horizon is ``at_iteration - estimate_iteration``
        steps — using a single step would leave the association gate
        trailing the target by a full 15 m hop.
        """
        if self.tracker._estimate is None:
            return None
        v = self.tracker._velocity_estimate
        if v is None:
            return self.tracker._estimate
        est_iter = self.tracker.estimate_iteration()
        steps = 1.0
        if at_iteration is not None and est_iter is not None:
            steps = max(float(at_iteration - est_iter), 1.0)
        return self.tracker._estimate + v * dt * steps


class MultiTargetCDPF:
    """Track an unknown number of targets with per-target CDPF cliques.

    Parameters
    ----------
    gate_radius:
        Association gate: a detection belongs to the nearest track whose
        predicted position is within this distance (default: the sensing
        diameter, so gates of well-separated targets never overlap).
    spawn_threshold:
        Minimum clustered unassociated detectors to start a new track.
    prune_after:
        Retire a track after this many consecutive detection-less iterations.
    max_tracks:
        Hard safety cap on simultaneous live tracks.
    """

    def __init__(
        self,
        scenario: Scenario,
        *,
        rng: np.random.Generator,
        config: PropagationConfig | None = None,
        neighborhood_estimation: bool = False,
        gate_radius: float | None = None,
        spawn_threshold: int = 3,
        prune_after: int = 2,
        max_tracks: int = 8,
    ) -> None:
        if spawn_threshold < 1:
            raise ValueError("spawn_threshold must be >= 1")
        if prune_after < 1:
            raise ValueError("prune_after must be >= 1")
        if max_tracks < 1:
            raise ValueError("max_tracks must be >= 1")
        self.name = "MT-CDPF-NE" if neighborhood_estimation else "MT-CDPF"
        self.scenario = scenario
        self.rng = rng
        self.config = config
        self.neighborhood_estimation = neighborhood_estimation
        self.gate_radius = (
            gate_radius if gate_radius is not None else 2.0 * scenario.sensing_radius
        )
        self.spawn_threshold = spawn_threshold
        self.prune_after = prune_after
        self.max_tracks = max_tracks

        self.medium = scenario.make_medium()
        self.tracks: list[Track] = []
        self._next_id = 0
        self._estimate_iter: int | None = None
        self.stats = TrackerStats()

        # The wrapper's own phases; each per-track CDPF iteration inside
        # "tracks" runs its *own* pipeline on the shared medium, and the
        # innermost phase scope wins, so the combined ledger still attributes
        # traffic to CDPF's propagation/correction/... phases.
        self.phases = (
            Phase("associate", self._phase_associate),
            Phase("tracks", self._phase_tracks),
            Phase("maintain", self._phase_maintain),
        )
        self.pipeline = PhasePipeline(self, medium=self.medium, stats=self.stats)

    # ------------------------------------------------------------------

    @property
    def live_tracks(self) -> list[Track]:
        return [t for t in self.tracks if not t.retired]

    @property
    def accounting(self):
        return self.medium.accounting

    def estimate_iteration(self) -> int | None:
        return self._estimate_iter

    # ------------------------------------------------------------------
    # checkpoint protocol
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """All track lifecycles plus per-track CDPF state.  The shared medium
        is owned by the run layer and snapshots separately; per-track
        snapshots therefore exclude it too."""
        from ..runtime.checkpoint import snapshot_rng

        return {
            "tracks": [
                {
                    "track_id": int(t.track_id),
                    "born_at": int(t.born_at),
                    "empty_iterations": int(t.empty_iterations),
                    "retired": bool(t.retired),
                    "tracker": t.tracker.snapshot(),
                }
                for t in self.tracks
            ],
            "next_id": int(self._next_id),
            "estimate_iter": self._estimate_iter,
            "rng": snapshot_rng(self.rng),
            "stats": self.stats.snapshot(),
        }

    def restore(self, state: dict) -> None:
        from ..runtime.checkpoint import restore_rng

        tracks: list[Track] = []
        for ts in state["tracks"]:
            # rebuild on the shared medium with a placeholder rng; the real
            # per-track stream is transplanted by the nested restore
            tracker = CDPFTracker(
                self.scenario,
                rng=np.random.default_rng(0),
                config=self.config,
                neighborhood_estimation=self.neighborhood_estimation,
                medium=self.medium,
            )
            tracker.restore(ts["tracker"])
            tracks.append(
                Track(
                    track_id=int(ts["track_id"]),
                    tracker=tracker,
                    born_at=int(ts["born_at"]),
                    empty_iterations=int(ts["empty_iterations"]),
                    retired=bool(ts["retired"]),
                )
            )
        self.tracks = tracks
        self._next_id = int(state["next_id"])
        self._estimate_iter = (
            None if state["estimate_iter"] is None else int(state["estimate_iter"])
        )
        restore_rng(self.rng, state["rng"])
        self.stats.restore(state["stats"])

    # ------------------------------------------------------------------

    def _associate(self, ctx: StepContext) -> tuple[dict[int, list[int]], list[int]]:
        """Gate each detector to the nearest live track (or leave it free)."""
        positions = self.scenario.deployment.positions
        dt = self.scenario.dynamics.dt
        live = self.live_tracks
        refs: list[tuple[int, np.ndarray]] = []
        for idx, track in enumerate(live):
            p = track.predicted_position(dt, at_iteration=ctx.iteration)
            if p is None and track.tracker.holders:
                # no estimate yet (first iteration after birth): dead-reckon
                # the holder centroid with the prior velocity
                holder_pos = positions[sorted(track.tracker.holders)]
                p = holder_pos.mean(axis=0) + np.asarray(
                    self.scenario.prior_velocity, dtype=np.float64
                ) * dt
            if p is not None:
                refs.append((idx, p))
        assigned: dict[int, list[int]] = {idx: [] for idx in range(len(live))}
        free: list[int] = []
        for nid in sorted(int(d) for d in np.asarray(ctx.detectors).ravel()):
            best, best_d = None, np.inf
            for idx, p in refs:
                d = float(np.linalg.norm(positions[nid] - p))
                if d < best_d:
                    best, best_d = idx, d
            if best is not None and best_d <= self.gate_radius:
                assigned[best].append(nid)
            else:
                free.append(nid)
        return assigned, free

    def _spawn_tracks(self, free: list[int], k: int) -> None:
        """Cluster unassociated detectors; each big-enough cluster births a track."""
        positions = self.scenario.deployment.positions
        remaining = list(free)
        r = self.scenario.sensing_radius
        while remaining and len(self.live_tracks) < self.max_tracks:
            seed_id = remaining[0]
            cluster = [
                nid
                for nid in remaining
                if np.linalg.norm(positions[nid] - positions[seed_id]) <= 2 * r
            ]
            remaining = [nid for nid in remaining if nid not in cluster]
            if len(cluster) < self.spawn_threshold:
                continue
            tracker = CDPFTracker(
                self.scenario,
                rng=np.random.default_rng(self.rng.integers(2**63)),
                config=self.config,
                neighborhood_estimation=self.neighborhood_estimation,
                medium=self.medium,  # shared: the ledger sums all tracks
            )
            self.tracks.append(Track(track_id=self._next_id, tracker=tracker, born_at=k))
            self._next_id += 1
            # birth: feed the cluster as the new tracker's first detection set
            tracker.step(self._sub_context(k, cluster, {}))

    @staticmethod
    def _sub_context(k: int, detectors: list[int], measurements: dict) -> StepContext:
        return StepContext(
            iteration=k,
            detectors=np.array(sorted(detectors), dtype=np.intp),
            measurements=measurements,
        )

    # ------------------------------------------------------------------

    def step(self, ctx: StepContext) -> dict[int, np.ndarray]:
        """Advance every track one iteration; returns {track_id: estimate}.

        Estimates refer to iteration ``ctx.iteration - 1`` (CDPF's inherent
        correction latency).
        """
        return self.pipeline.run(ctx)

    def _phase_associate(self, state: IterationState) -> None:
        state.assigned, state.free = self._associate(state.ctx)

    def _phase_tracks(self, state: IterationState) -> None:
        """Advance each live track's CDPF one iteration on its gated detections."""
        ctx = state.ctx
        k = state.iteration
        estimates: dict[int, np.ndarray] = {}
        live = self.live_tracks
        for idx, track in enumerate(live):
            detectors = state.assigned.get(idx, [])
            sub = self._sub_context(
                k, detectors, {nid: ctx.measurements[nid] for nid in detectors}
            )
            est = track.tracker.step(sub)
            if est is not None:
                estimates[track.track_id] = est
            # a CDPF cloud coasts forever without detections (no likelihood
            # means no evidence either way), so track life is bounded by the
            # supply of associated detections, not by the holder count
            if detectors and track.tracker.holders:
                track.empty_iterations = 0
            else:
                track.empty_iterations += 1
                if track.empty_iterations >= self.prune_after:
                    track.retired = True
        state.estimate = estimates

    def _phase_maintain(self, state: IterationState) -> None:
        """Merge duplicate tracks, spawn new ones, roll up the shared stats."""
        k = state.iteration
        n_before = len(self.tracks)
        self._merge_duplicates()
        self._spawn_tracks(state.free, k)
        self._estimate_iter = k - 1
        n_holders = sum(len(t.tracker.holders) for t in self.live_tracks)
        self.stats.record_population(n_holders, len(self.tracks) - n_before)
        # per-track counters roll up into the wrapper's combined view
        self.stats.degraded_iterations = sum(
            t.tracker.stats.degraded_iterations for t in self.tracks
        )

    def _merge_duplicates(self) -> None:
        """Retire the weaker of any two tracks following the same target.

        Two live tracks whose predicted positions fall within one sensing
        radius of each other are duplicates (one physical target cannot host
        two cliques); the one with fewer holders retires and its particles
        are abandoned — its mass is redundant with the survivor's.
        """
        dt = self.scenario.dynamics.dt
        live = self.live_tracks
        for i in range(len(live)):
            if live[i].retired:
                continue
            pi = live[i].predicted_position(dt)
            if pi is None:
                continue
            for j in range(i + 1, len(live)):
                if live[j].retired:
                    continue
                pj = live[j].predicted_position(dt)
                if pj is None:
                    continue
                if np.linalg.norm(pi - pj) <= self.scenario.sensing_radius:
                    weaker = min(
                        (live[i], live[j]), key=lambda t: len(t.tracker.holders)
                    )
                    weaker.retired = True
                    if weaker is live[i]:
                        break
