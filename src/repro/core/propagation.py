"""Particle maintenance and propagation (paper §III).

Particles live *on nodes*: a particle's position is its host node's position,
so a particle is fully described by (host id, velocity, weight).  This module
implements the three mechanics of §III-B as pure, locally-computable
functions, shared by CDPF, CDPF-NE and SDPF:

* **recording decision** — which neighbors of a broadcasting holder record
  the particle (nodes inside the sender's *predicted area*, thinned by the
  linear probability model);
* **weight division** — a recorded particle's weight is split across the
  recorders proportionally to their linear probabilities, preserving the
  total (§III-B's two division rules);
* **combination** — shares arriving at one node from several senders merge
  into a single particle whose weight is the sum and whose velocity is the
  share-weighted mean.

Every function takes only information a node can possess locally (its
neighbor table, the broadcast message content); the tests include an explicit
consistency check that two different recorders of the same broadcast compute
identical divisions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels.propagation import batch_propagate
from .contributions import linear_probability  # noqa: F401  (re-exported for tests)

__all__ = [
    "HeldParticle",
    "PropagationConfig",
    "select_recorders",
    "division_shares",
    "combine_shares",
    "implied_velocity",
]


@dataclass
class HeldParticle:
    """The particle a holder node maintains (position == the node's position).

    ``weight`` is *unnormalized*: normalization constants travel by
    overhearing and are applied in the correction step.
    """

    velocity: np.ndarray  # (2,)
    weight: float

    def __post_init__(self) -> None:
        self.velocity = np.asarray(self.velocity, dtype=np.float64).reshape(2)
        if not np.isfinite(self.velocity).all():
            raise ValueError("velocity must be finite")
        if not (np.isfinite(self.weight) and self.weight >= 0.0):
            raise ValueError(f"weight must be finite and non-negative, got {self.weight}")

    def state(self, position: np.ndarray) -> np.ndarray:
        """The full (x, y, x', y') state given the host position."""
        return np.concatenate([np.asarray(position, dtype=np.float64), self.velocity])


@dataclass(frozen=True)
class PropagationConfig:
    """Knobs of the propagation mechanism.

    Attributes
    ----------
    predicted_area_radius:
        Radius of the predicted area around a sender's predicted position
        (Definition 1 uses the sensing radius; the paper's dotted circles).
    record_threshold:
        Minimum linear probability for a candidate to record.  0 keeps every
        node in the predicted area; 0.5 (default) keeps nodes within half the
        radius of the prediction — the paper's "highly likely to detect"
        thinning, and the knob that bounds the holder count N_s.
    max_recorders:
        Optional hard cap: keep only the top-k candidates by probability
        (the paper notes N_s "is controllable"; None disables the cap).
    velocity_mode:
        ``"track"`` — every recorded particle carries the *track velocity*,
        the displacement of consecutive consensus estimates
        ``(x_hat_k - x_hat_{k-1}) / dt`` (default).  Both estimates are
        common knowledge in the active region (the region advances ~15 m
        per iteration while the radio reaches 30 m, so holders overhear
        consecutive propagation rounds), and it is the only velocity signal
        that actually follows the target's turns; per-particle displacement
        velocities are centered on the *old* velocity and never converge.
        ``"blend"`` — mix the sender's velocity with the sender->recorder
        displacement, ``v = (1 - a) v_s + a (x_r - x_s) / dt`` (``a < 1``
        damps the geometric growth of prediction spread that pure
        displacement causes);
        ``"displacement"`` — the sender->recorder displacement over one
        filter period;
        ``"inherit"`` — the recorder keeps the sender's velocity.
    velocity_alpha:
        The displacement fraction ``a`` of the blend mode.
    drop_threshold:
        Correction-step resampling (§III-B's "zero or almost zero density"
        rule): a recorder drops its particle when its recorded share is
        below ``drop_threshold`` times the *largest* recorded share.  All
        shares are deterministic functions of overheard data, so the rule is
        locally evaluable without communication; being scale-free in the
        weights it cannot extinguish the whole population, and the surviving
        holder count N_s is set by geometry — growing with the deployment
        density exactly as §III-A describes ("bounded when given a certain
        deployment density").
    creation_slack:
        A detecting non-holder creates a fresh particle when it is farther
        than ``creation_slack * predicted_area_radius`` from *every*
        overheard predicted position (the paper's "node outside of any
        predicted areas" case), or when it heard no propagation at all.
        This is the only channel that re-anchors a drifted track to reality,
        which is what bounds CDPF-NE's dead-reckoning error.
    creation_limit:
        Expected number of creators per iteration when *every* detector is
        eligible: each eligible detector creates with probability
        ``creation_limit / n_expected_detectors``, where the denominator is
        its locally estimated co-detector count (degree scaled by the
        sensing/comm area ratio).  Without this, a drifted prediction makes
        every detector create at once and the holder count — hence the
        communication cost — spikes with the deployment density.
    """

    predicted_area_radius: float = 10.0
    record_threshold: float = 0.5
    max_recorders: int | None = None
    velocity_mode: str = "track"
    velocity_alpha: float = 0.5
    drop_threshold: float = 0.5
    creation_slack: float = 1.5
    creation_limit: float = 4.0
    #: Degeneracy-aware area adaptation (the paper's future-work item 2:
    #: carrying PF degeneracy countermeasures into the distributed setting).
    #: When the overheard weight population's ESS ratio falls below
    #: ``ess_target``, the recording geometry widens by ``area_scale_max``
    #: for that round, re-diversifying the support — the node-hosted analog
    #: of sample-impoverishment mitigation.  The trigger is the overheard
    #: weight vector, identical at every participant, so the widened
    #: geometry stays consistent without communication.
    adaptive_area: bool = False
    ess_target: float = 0.3
    area_scale_max: float = 1.5

    def __post_init__(self) -> None:
        if self.predicted_area_radius <= 0:
            raise ValueError("predicted_area_radius must be positive")
        if not 0.0 <= self.record_threshold < 1.0:
            raise ValueError(f"record_threshold must be in [0, 1), got {self.record_threshold}")
        if self.max_recorders is not None and self.max_recorders < 1:
            raise ValueError("max_recorders must be >= 1 or None")
        if self.velocity_mode not in ("track", "blend", "displacement", "inherit"):
            raise ValueError(f"unknown velocity_mode {self.velocity_mode!r}")
        if not 0.0 <= self.velocity_alpha <= 1.0:
            raise ValueError(f"velocity_alpha must be in [0, 1], got {self.velocity_alpha}")
        if self.drop_threshold < 0.0:
            raise ValueError(f"drop_threshold must be non-negative, got {self.drop_threshold}")
        if self.creation_slack < 1.0:
            raise ValueError(f"creation_slack must be >= 1, got {self.creation_slack}")
        if self.creation_limit <= 0:
            raise ValueError(f"creation_limit must be positive, got {self.creation_limit}")
        if not 0.0 < self.ess_target <= 1.0:
            raise ValueError(f"ess_target must be in (0, 1], got {self.ess_target}")
        if self.area_scale_max < 1.0:
            raise ValueError(f"area_scale_max must be >= 1, got {self.area_scale_max}")

    def recording_radius(self) -> float:
        """Radius within which linear probability exceeds the record threshold."""
        return self.predicted_area_radius * (1.0 - self.record_threshold)

    def expected_recorders(self, degree: int, comm_radius: float) -> float:
        """Locally estimated recorder count: degree scaled by the area ratio.

        ``degree + 1`` counts the node itself; the recording disk has radius
        :meth:`recording_radius`.
        """
        if degree < 0:
            raise ValueError("degree must be non-negative")
        if comm_radius <= 0:
            raise ValueError("comm_radius must be positive")
        ratio = (self.recording_radius() / comm_radius) ** 2
        return max(1.0, (degree + 1) * ratio)


def select_recorders(
    candidate_ids: np.ndarray,
    candidate_positions: np.ndarray,
    predicted_position: np.ndarray,
    config: PropagationConfig,
) -> tuple[np.ndarray, np.ndarray]:
    """Which candidates record a broadcast particle, and their probabilities.

    ``candidate_ids/positions`` are the nodes that *heard* the broadcast
    (typically the sender's awake one-hop neighbors).  Returns
    ``(recorder_ids, probabilities)`` sorted by id.  Deterministic, and a
    function of shared data only — every candidate can evaluate it
    identically for the whole candidate set, which is what makes the division
    rule consistent without extra communication.
    """
    ids = np.asarray(candidate_ids, dtype=np.intp)
    pos = np.atleast_2d(np.asarray(candidate_positions, dtype=np.float64))
    if ids.shape[0] != pos.shape[0]:
        raise ValueError("candidate ids/positions length mismatch")
    if ids.size == 0:
        return ids, np.zeros(0)
    pred = np.asarray(predicted_position, dtype=np.float64)
    ((sel, probs, _),) = batch_propagate(
        pred[None, :],
        np.ones(1),
        ids,
        pos,
        area_radius=config.predicted_area_radius,
        record_threshold=config.record_threshold,
        max_recorders=config.max_recorders,
    )
    return ids[sel], probs


def division_shares(probabilities: np.ndarray, weight: float) -> np.ndarray:
    """Split ``weight`` across recorders proportionally to their probabilities.

    Implements §III-B's division rules: shares sum to the original weight,
    and the ratio of any two shares equals the ratio of the recorders'
    linear probabilities.
    """
    p = np.asarray(probabilities, dtype=np.float64)
    if p.ndim != 1 or p.size == 0:
        raise ValueError("probabilities must be a non-empty 1-D array")
    if (p <= 0).any():
        raise ValueError("recorders must have strictly positive probability")
    if not (np.isfinite(weight) and weight >= 0):
        raise ValueError(f"weight must be finite and non-negative, got {weight}")
    return weight * (p / p.sum())


def implied_velocity(
    sender_position: np.ndarray,
    recorder_position: np.ndarray,
    sender_velocity: np.ndarray,
    dt: float,
    mode: str,
    alpha: float = 0.5,
    track_velocity: np.ndarray | None = None,
) -> np.ndarray:
    """Velocity of a recorded particle under the configured mode."""
    sender_velocity = np.asarray(sender_velocity, dtype=np.float64)
    if mode == "track":
        if track_velocity is None:
            # no consensus velocity yet (e.g. the first propagation round):
            # fall back to the sender's carried velocity
            return sender_velocity.copy()
        return np.asarray(track_velocity, dtype=np.float64).copy()
    if mode == "inherit":
        return sender_velocity.copy()
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")
    disp = (
        np.asarray(recorder_position, dtype=np.float64)
        - np.asarray(sender_position, dtype=np.float64)
    ) / dt
    if mode == "displacement":
        return disp
    if mode == "blend":
        return (1.0 - alpha) * sender_velocity + alpha * disp
    raise ValueError(f"unknown velocity mode {mode!r}")


def combine_shares(
    shares: list[tuple[float, np.ndarray]],
) -> HeldParticle:
    """Merge shares ``(weight, velocity)`` from several senders into one particle.

    §III-A: particles on the same node are combined; the combined weight is
    the sum and the velocity is the weight-averaged velocity (falling back to
    the plain mean when all shares carry zero weight).
    """
    if not shares:
        raise ValueError("need at least one share to combine")
    weights = np.array([s[0] for s in shares], dtype=np.float64)
    velocities = np.array([np.asarray(s[1], dtype=np.float64).reshape(2) for s in shares])
    if (weights < 0).any():
        raise ValueError("share weights must be non-negative")
    total = float(weights.sum())
    if total > 0.0:
        velocity = (weights / total) @ velocities
    else:
        velocity = velocities.mean(axis=0)
    return HeldParticle(velocity=velocity, weight=total)
