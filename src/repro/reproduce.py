"""One-shot reproduction driver: ``python -m repro.reproduce``.

Regenerates Table I, Figure 4, Figures 5/6 and the headline-claim comparison
in one run and prints everything as plain-text tables (the same renderers the
benchmarks use).  Options:

    python -m repro.reproduce --seeds 10 --densities 5,10,15,20,25,30,35,40
    python -m repro.reproduce --quick          # 3 seeds, 3 densities
    python -m repro.reproduce --workers 4      # process-parallel sweep
    python -m repro.reproduce --store sweep.jsonl   # resumable sweep
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=10, help="runs per (density, algorithm)")
    parser.add_argument(
        "--densities",
        type=str,
        default="5,10,15,20,25,30,35,40",
        help="comma-separated node densities (nodes / 100 m^2)",
    )
    parser.add_argument("--iterations", type=int, default=10, help="filter iterations per run")
    parser.add_argument("--quick", action="store_true", help="3 seeds x 3 densities")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="sweep worker processes (bit-identical to serial; 1 = in-process)",
    )
    parser.add_argument(
        "--store",
        type=str,
        default=None,
        help="JSONL file persisting completed sweep cells (interrupt + rerun resumes)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        args.seeds, args.densities = 3, "5,20,40"
    densities = tuple(float(x) for x in args.densities.split(","))

    from .experiments.costmodel import CostModel, table1_rows
    from .experiments.figures import figure4_estimation_example
    from .experiments.report import render_series, render_table
    from .experiments.summary import extract_headline_claims
    from .experiments.sweep import density_sweep
    from .network.messages import DataSizes

    t0 = time.time()

    # ---- Table I -----------------------------------------------------------
    print(render_table(["Method", "Per-iteration cost"], list(table1_rows()), title="Table I (symbolic)"))
    cm = CostModel(DataSizes(), n_detectors=55, n_particles=16, hops=2.5)
    print()
    print(
        render_table(
            ["Method", "bytes/iteration"],
            list(cm.as_dict().items()),
            title="Table I evaluated (N=55, Ns=16, H=2.5)",
        )
    )

    # ---- Figure 4 -----------------------------------------------------------
    fig4 = figure4_estimation_example(density=20.0, n_iterations=args.iterations)
    print(
        f"\nFigure 4: CDPF RMSE {fig4.cdpf_rmse:.2f} m, CDPF-NE RMSE "
        f"{fig4.cdpf_ne_rmse:.2f} m (density 20; see benchmarks for the full tracks)"
    )

    # ---- Figures 5 + 6 ------------------------------------------------------
    print(f"\nRunning the density sweep: {len(densities)} densities x 4 algorithms x "
          f"{args.seeds} seeds ({args.workers} worker{'s' if args.workers != 1 else ''}) ...",
          flush=True)
    sweep = density_sweep(
        densities,
        n_seeds=args.seeds,
        n_iterations=args.iterations,
        max_workers=args.workers,
        store=args.store,
    )
    if sweep.run_summary is not None:
        print()
        print(
            render_table(
                ["Sweep engine", "Value"],
                [list(r) for r in sweep.run_summary.as_rows()],
                title="Run summary",
            )
        )
    print()
    print(
        render_series(
            "density",
            sweep.densities,
            {n: sweep.series(n, "total_bytes") for n in sweep.algorithms},
            title="Figure 5: communication cost (bytes)",
            precision=0,
        )
    )
    print()
    print(
        render_series(
            "density",
            sweep.densities,
            {n: sweep.series(n, "rmse") for n in sweep.algorithms},
            title="Figure 6: estimation error (RMSE, m)",
        )
    )

    # ---- headline claims -----------------------------------------------------
    claims = extract_headline_claims(sweep)
    print()
    print(
        render_table(
            ["Claim", "Paper", "Measured"],
            [list(r) for r in claims.as_rows()],
            title="Headline claims",
        )
    )
    print(f"\nDone in {time.time() - t0:.0f} s.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
